"""HTTP error-path tests for :class:`~repro.serving.PredictionServer`.

A public prediction endpoint sees garbage: malformed JSON, rows with the
wrong arity, unknown routes, oversized bodies.  Each must come back as a
*structured* 4xx JSON error — never a 500, never a dead server — and the
server must keep answering healthy requests afterwards.  The suite runs
over a real socket (ephemeral port) against a hypergraph artifact, which
also pins the ``/healthz`` contract for the newly-servable formulation.
"""

import http.client
import json
import logging
import threading
import time

import numpy as np
import pytest

from repro.datasets import make_fraud
from repro.formulations import HypergraphFormulation
from repro.serving import ModelArtifact, PredictionServer
from repro.serving.artifact import ARTIFACT_SCHEMA_VERSION


@pytest.fixture(scope="module")
def dataset():
    return make_fraud(n=60, seed=3)


@pytest.fixture(scope="module")
def artifact(dataset):
    # Untrained weights: HTTP semantics don't depend on model quality.
    config = {
        "network": "hypergraph_gnn", "hidden_dim": 8, "out_dim": 2,
        "num_layers": 2, "task": dataset.task,
    }
    fitted = HypergraphFormulation().fit(dataset, None, config)
    model = fitted.build_model(np.random.default_rng(0))
    arrays, meta = fitted.artifact_payload()
    return ModelArtifact(
        formulation="hypergraph",
        network=fitted.model_builder,
        config=config,
        state_dict=model.state_dict(),
        preprocessor=fitted.preprocessor,
        payload_arrays=arrays,
        payload_meta=meta,
    )


@pytest.fixture(scope="module")
def server(artifact):
    with PredictionServer(artifact, port=0, max_body_bytes=4096) as srv:
        yield srv


def _request(server, method, path, body=None, headers=None):
    conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        payload = json.loads(response.read().decode())
        return response.status, payload
    finally:
        conn.close()


def _request_raw(server, method, path):
    """Like ``_request`` but for non-JSON responses (``/metrics``)."""
    conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
    try:
        conn.request(method, path)
        response = conn.getresponse()
        return (
            response.status,
            response.getheader("Content-Type"),
            response.read().decode(),
        )
    finally:
        conn.close()


def _scrape(server):
    status, content_type, text = _request_raw(server, "GET", "/metrics")
    assert status == 200
    return text


def _sample_value(text, line_prefix):
    """Value of the unique exposition sample starting with ``line_prefix``."""
    matches = [
        line for line in text.splitlines()
        if line.startswith(line_prefix) and not line.startswith("#")
    ]
    assert len(matches) == 1, f"{line_prefix!r} matched {matches!r}"
    return float(matches[0].rsplit(" ", 1)[1])


def _good_row(dataset):
    return {
        "numerical": dataset.numerical[0].tolist(),
        "categorical": dataset.categorical[0].tolist(),
    }


class TestErrorPaths:
    def test_malformed_json_returns_400(self, server):
        status, payload = _request(server, "POST", "/predict", body="{not json")
        assert status == 400
        assert "invalid JSON" in payload["error"]

    def test_non_object_body_returns_400(self, server):
        status, payload = _request(server, "POST", "/predict", body="[1, 2, 3]")
        assert status == 400
        assert "JSON object" in payload["error"]

    def test_wrong_numerical_arity_returns_400(self, server, dataset):
        row = {"numerical": [0.0] * (dataset.num_numerical + 2)}
        status, payload = _request(server, "POST", "/predict", body=json.dumps(row))
        assert status == 400
        assert "numerical columns" in payload["error"]

    def test_wrong_categorical_arity_returns_400(self, server, dataset):
        row = _good_row(dataset)
        row["categorical"] = row["categorical"] + [0, 0]
        status, payload = _request(server, "POST", "/predict", body=json.dumps(row))
        assert status == 400
        assert "categorical" in payload["error"]

    def test_missing_numerical_key_returns_400(self, server):
        status, payload = _request(
            server, "POST", "/predict", body=json.dumps({"categorical": [1]})
        )
        assert status == 400
        assert "numerical" in payload["error"]

    def test_empty_and_ragged_batches_return_400(self, server, dataset):
        status, payload = _request(
            server, "POST", "/predict", body=json.dumps({"rows": []})
        )
        assert status == 400 and "non-empty" in payload["error"]
        ragged = {"rows": [_good_row(dataset), {"numerical": [1.0]}]}
        status, payload = _request(
            server, "POST", "/predict", body=json.dumps(ragged)
        )
        assert status == 400 and "error" in payload

    def test_unknown_route_returns_404(self, server):
        for method, path in (("GET", "/nope"), ("POST", "/nope"), ("GET", "/predict/x")):
            status, payload = _request(server, method, path)
            assert status == 404
            assert "unknown path" in payload["error"]

    def test_oversized_body_returns_413_without_reading_it(self, server, dataset):
        body = json.dumps({
            "numerical": dataset.numerical[0].tolist(),
            "padding": "x" * 10_000,  # well past max_body_bytes=4096
        })
        status, payload = _request(server, "POST", "/predict", body=body)
        assert status == 413
        assert "exceeds" in payload["error"]

    def test_server_survives_the_error_barrage(self, server, dataset):
        # After every 4xx above the server still answers cleanly.
        status, payload = _request(
            server, "POST", "/predict", body=json.dumps(_good_row(dataset))
        )
        assert status == 200
        assert payload["rows"] == 1
        assert abs(sum(payload["probabilities"][0]) - 1.0) < 1e-6


class TestHealthz:
    def test_healthz_reports_hypergraph_deployment(self, server, dataset):
        status, health = _request(server, "GET", "/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert health["formulation"] == "hypergraph"
        assert health["network"] == "hypergraph_gnn"
        assert health["schema_version"] == ARTIFACT_SCHEMA_VERSION
        assert health["incremental"] is True
        assert health["pool_rows"] == dataset.num_instances

    def test_health_alias_route(self, server):
        status, health = _request(server, "GET", "/health")
        assert status == 200 and health["formulation"] == "hypergraph"

    def test_healthz_snapshot_is_locked_and_consistent(self, server, dataset):
        _request(server, "POST", "/predict", body=json.dumps(_good_row(dataset)))
        status, health = _request(server, "GET", "/healthz")
        assert status == 200
        engine = health["engine"]
        # The locked engine snapshot: every scored row is accounted for by
        # exactly one of cache-hit or forward.
        assert engine["cache_hits"] + engine["forward_rows"] == engine["rows"]
        assert health["batcher"]["rows"] <= engine["rows"]
        assert health["server"]["rejected_oversize"] >= 0


class TestMetricsEndpoint:
    def test_metrics_exposes_request_and_stage_histograms(self, server, dataset):
        status, payload = _request(
            server, "POST", "/predict", body=json.dumps(_good_row(dataset))
        )
        assert status == 200
        text = _scrape(server)
        # Prometheus text exposition: typed families with HELP lines.
        assert "# TYPE repro_http_requests_total counter" in text
        assert "# TYPE repro_http_request_duration_seconds histogram" in text
        assert "# TYPE repro_request_duration_seconds histogram" in text
        assert "# TYPE repro_stage_duration_seconds histogram" in text
        # At least one predict flowed through: the engine-side request
        # histogram and every scorer stage observed it.
        assert _sample_value(
            text,
            'repro_request_duration_seconds_count'
            '{formulation="hypergraph",endpoint="predict_batch"}',
        ) >= 1
        # plan_execute replaces propagate: the server's engine defaults to
        # the compiled plan path.
        for stage in ("cache", "score", "encode", "attach", "plan_execute", "head"):
            assert _sample_value(
                text,
                f'repro_stage_duration_seconds_count'
                f'{{formulation="hypergraph",stage="{stage}"}}',
            ) >= 1, stage
        # Drift gauges are present and finite.
        for gauge in (
            "repro_engine_unk_rate", "repro_engine_cache_hit_rate",
            "repro_engine_attach_fanout", "repro_engine_cache_entries",
        ):
            assert np.isfinite(
                _sample_value(text, f'{gauge}{{formulation="hypergraph"}}')
            )
        # Batcher instrumentation rides the same registry.
        assert _sample_value(text, "repro_batcher_queue_depth") == 0
        assert _sample_value(text, "repro_batcher_in_flight") == 0
        assert "# TYPE repro_batcher_queue_wait_seconds histogram" in text

    def test_metrics_content_type_is_prometheus_text(self, server):
        status, content_type, _ = _request_raw(server, "GET", "/metrics")
        assert status == 200
        assert content_type == "text/plain; version=0.0.4; charset=utf-8"

    def test_http_counters_track_status_and_path(self, server, dataset):
        before = _scrape(server)

        def count(text, path, status):
            prefix = (
                f'repro_http_requests_total{{method="POST",path="{path}",'
                f'status="{status}"}}'
            )
            try:
                return _sample_value(text, prefix)
            except AssertionError:
                return 0.0

        _request(server, "POST", "/predict", body=json.dumps(_good_row(dataset)))
        _request(server, "POST", "/predict", body="{not json")
        _request(server, "POST", "/definitely/not/a/route")
        after = _scrape(server)
        assert count(after, "/predict", 200) == count(before, "/predict", 200) + 1
        assert count(after, "/predict", 400) == count(before, "/predict", 400) + 1
        # Unknown paths collapse into one "other" series — scrape label
        # cardinality stays bounded no matter what clients probe.
        assert count(after, "other", 404) == count(before, "other", 404) + 1
        assert "/definitely/not/a/route" not in after

    def test_oversized_requests_increment_the_413_counter(self, server, dataset):
        before = _sample_value(_scrape(server), "repro_http_rejected_oversize_total")
        body = json.dumps({
            "numerical": dataset.numerical[0].tolist(),
            "padding": "x" * 10_000,
        })
        status, _ = _request(server, "POST", "/predict", body=body)
        assert status == 413
        after = _sample_value(_scrape(server), "repro_http_rejected_oversize_total")
        assert after == before + 1


class TestAccessLog:
    def test_structured_json_access_log_when_enabled(self, artifact, dataset):
        records = []

        class Capture(logging.Handler):
            def emit(self, record):
                records.append(record.getMessage())

        logger = logging.getLogger("repro.serving.access")
        handler = Capture(level=logging.INFO)
        old_level = logger.level
        logger.addHandler(handler)
        logger.setLevel(logging.INFO)
        try:
            with PredictionServer(artifact, port=0, access_log=True) as srv:
                _request(srv, "POST", "/predict", body=json.dumps(_good_row(dataset)))
                _request(srv, "GET", "/healthz")
        finally:
            logger.removeHandler(handler)
            logger.setLevel(old_level)

        entries = [json.loads(line) for line in records]
        assert len(entries) == 2
        predict, healthz = entries
        assert predict["method"] == "POST" and predict["path"] == "/predict"
        assert predict["status"] == 200 and predict["rows"] == 1
        assert predict["latency_ms"] >= 0
        assert healthz["method"] == "GET" and healthz["path"] == "/healthz"
        assert healthz["status"] == 200

    def test_access_log_is_off_by_default(self, artifact, dataset):
        records = []

        class Capture(logging.Handler):
            def emit(self, record):
                records.append(record.getMessage())

        logger = logging.getLogger("repro.serving.access")
        handler = Capture(level=logging.INFO)
        old_level = logger.level
        logger.addHandler(handler)
        logger.setLevel(logging.INFO)
        try:
            with PredictionServer(artifact, port=0) as srv:
                _request(srv, "POST", "/predict", body=json.dumps(_good_row(dataset)))
        finally:
            logger.removeHandler(handler)
            logger.setLevel(old_level)
        assert records == []


class TestArtifactIdentity:
    def test_healthz_carries_generation_and_sha(self, server):
        status, health = _request(server, "GET", "/healthz")
        assert status == 200
        assert health["artifact_generation"] == 1
        # This module's artifact was built in memory (never load()ed), so
        # its content hash is unknown — the field must still be present.
        assert "artifact_sha" in health
        assert health["mmapped"] is False

    def test_generation_gauge_in_metrics(self, server):
        text = _scrape(server)
        assert _sample_value(text, "repro_engine_artifact_generation") == 1


class TestUnavailableStates:
    def test_predict_during_drain_returns_structured_503(self, artifact, dataset):
        with PredictionServer(artifact, port=0) as srv:
            srv._draining = True
            try:
                status, payload = _request(
                    srv, "POST", "/predict", body=json.dumps(_good_row(dataset))
                )
            finally:
                srv._draining = False
            assert status == 503
            assert payload["status"] == "unavailable"
            assert payload["retriable"] is True
            assert "draining" in payload["error"]
            # Back out of the drain: the server still serves.
            status, payload = _request(
                srv, "POST", "/predict", body=json.dumps(_good_row(dataset))
            )
            assert status == 200

    def test_lazy_init_returns_503_until_engine_ready(
        self, artifact, dataset, monkeypatch
    ):
        import threading as _threading

        release = _threading.Event()
        original = PredictionServer._build_service

        def slow_build(self, art):
            release.wait(timeout=30)
            return original(self, art)

        monkeypatch.setattr(PredictionServer, "_build_service", slow_build)
        srv = PredictionServer(artifact, port=0, lazy_init=True)
        srv.start()
        try:
            # Socket is up before the engine exists; /predict answers 503
            # and /healthz reports the initializing state.
            status, payload = _request(
                srv, "POST", "/predict", body=json.dumps(_good_row(dataset))
            )
            assert status == 503
            assert payload["retriable"] is True
            status, health = _request(srv, "GET", "/healthz")
            assert status == 200
            assert health["status"] == "initializing"
            release.set()
            assert srv.wait_ready(timeout=30)
            status, payload = _request(
                srv, "POST", "/predict", body=json.dumps(_good_row(dataset))
            )
            assert status == 200
        finally:
            release.set()
            srv.shutdown()

    def test_shutdown_flushes_in_flight_requests(self, artifact, dataset):
        srv = PredictionServer(artifact, port=0, max_delay_ms=50.0)
        srv.start()
        results = []
        lock = threading.Lock()

        def one_predict():
            try:
                status, payload = _request(
                    srv, "POST", "/predict", body=json.dumps(_good_row(dataset))
                )
            except OSError as exc:
                status, payload = "exc", repr(exc)
            with lock:
                results.append((status, payload))

        threads = [threading.Thread(target=one_predict) for _ in range(8)]
        for thread in threads:
            thread.start()
        time.sleep(0.02)  # let requests reach the batcher's delay window
        srv.shutdown()
        for thread in threads:
            thread.join(timeout=15)
        assert not any(thread.is_alive() for thread in threads)
        # Every request resolved: completed (200) or refused at the drain
        # gate (503) — never a closed-batcher 500, never a hang.
        assert results
        statuses = {status for status, _ in results}
        assert statuses <= {200, 503}
        assert 200 in statuses  # the in-flight ones actually completed


class TestHotReload:
    def test_reload_under_load_swaps_without_dropping(self, tmp_path):
        from repro.datasets import make_correlated_instances
        from repro.pipeline import run_pipeline
        from repro.serving import InferenceEngine

        path_a = run_pipeline(
            make_correlated_instances(n=120, seed=0)
        ).export_artifact().save(tmp_path / "a")
        path_b = run_pipeline(
            make_correlated_instances(n=120, seed=1)
        ).export_artifact().save(tmp_path / "b")
        srv = PredictionServer(ModelArtifact.load(path_a), port=0)
        srv.start()
        try:
            stop = threading.Event()
            results = []
            lock = threading.Lock()
            body = json.dumps({"numerical": [0.15] * 16})

            def hammer():
                while not stop.is_set():
                    try:
                        status, payload = _request(
                            srv, "POST", "/predict", body=body
                        )
                    except OSError as exc:
                        status, payload = "exc", repr(exc)
                    with lock:
                        results.append((status, payload))

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for thread in threads:
                thread.start()
            try:
                status, reload_info = _request(
                    srv, "POST", "/admin/reload",
                    body=json.dumps({"artifact": str(path_b)}),
                )
            finally:
                time.sleep(0.3)
                stop.set()
                for thread in threads:
                    thread.join(timeout=30)
            assert status == 200
            assert reload_info["artifact_generation"] == 2
            assert results
            bad = [r for r in results if r[0] != 200]
            assert not bad, f"requests dropped during hot swap: {bad[:5]}"

            # Post-swap identity and parity with the new artifact's oracle.
            status, health = _request(srv, "GET", "/healthz")
            assert health["artifact_generation"] == 2
            assert health["artifact_sha"] == ModelArtifact.load(path_b).content_sha
            probe = np.asarray([0.15] * 16)
            expected = (
                InferenceEngine(ModelArtifact.load(path_b))
                .predict(probe).round(6).tolist()
            )
            status, payload = _request(srv, "POST", "/predict", body=body)
            assert status == 200
            assert payload["probabilities"][0] == expected
        finally:
            srv.shutdown()

    def test_concurrent_reload_conflicts_with_409(self, artifact):
        with PredictionServer(artifact, port=0) as srv:
            assert srv._reload_lock.acquire(blocking=False)
            try:
                status, payload = _request(srv, "POST", "/admin/reload", body="{}")
            finally:
                srv._reload_lock.release()
            assert status == 409
            assert "in progress" in payload["error"]

    def test_reload_bad_path_returns_400_and_keeps_serving(
        self, artifact, dataset
    ):
        with PredictionServer(artifact, port=0) as srv:
            status, payload = _request(
                srv, "POST", "/admin/reload",
                body=json.dumps({"artifact": "/nonexistent.npz"}),
            )
            assert status == 400
            status, payload = _request(
                srv, "POST", "/predict", body=json.dumps(_good_row(dataset))
            )
            assert status == 200

    def test_reload_without_source_returns_400(self, artifact):
        # This artifact was never load()ed from disk: no source_path.
        with PredictionServer(artifact, port=0) as srv:
            status, payload = _request(srv, "POST", "/admin/reload", body="{}")
            assert status == 400
            assert "source_path" in payload["error"] or "no artifact" in payload["error"]
