"""Unit tests for all five graph data structures."""

import networkx as nx
import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import (
    BipartiteGraph,
    Graph,
    HeteroGraph,
    Hypergraph,
    MultiplexGraph,
    coalesce_edge_index,
    degree_statistics,
    edge_homophily,
    remove_self_loops,
    symmetrize_edge_index,
)

RNG = np.random.default_rng(11)


def small_graph():
    edge_index = np.array([[0, 1, 2], [1, 2, 0]])
    return Graph(3, edge_index, x=np.eye(3), y=np.array([0, 0, 1]))


class TestGraph:
    def test_validation_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            Graph(2, np.array([[0, 2], [1, 0]]))
        with pytest.raises(ValueError):
            Graph(2, np.array([0, 1]))
        with pytest.raises(ValueError):
            Graph(2, np.array([[0], [1]]), x=np.eye(3))
        with pytest.raises(ValueError):
            Graph(2, np.array([[0], [1]]), y=np.zeros(3))

    def test_counts(self):
        g = small_graph()
        assert g.num_nodes == 3
        assert g.num_edges == 3
        assert g.num_features == 3

    def test_symmetrize_adds_reverse_edges(self):
        g = small_graph().symmetrize()
        pairs = set(map(tuple, g.edge_index.T))
        assert (1, 0) in pairs and (0, 1) in pairs
        assert g.num_edges == 6

    def test_symmetrize_is_idempotent(self):
        g1 = small_graph().symmetrize()
        g2 = g1.symmetrize()
        assert g1.num_edges == g2.num_edges

    def test_add_self_loops(self):
        g = small_graph().add_self_loops()
        pairs = set(map(tuple, g.edge_index.T))
        for i in range(3):
            assert (i, i) in pairs
        # applying twice does not duplicate loops
        assert g.add_self_loops().num_edges == g.num_edges

    def test_adjacency_orientation_aggregates_incoming(self):
        g = small_graph()
        adj = g.adjacency().toarray()
        # edge 0->1 means A[1, 0] = 1
        assert adj[1, 0] == 1.0
        assert adj[0, 1] == 0.0

    def test_gcn_adjacency_symmetric_with_unit_rows_on_regular_graph(self):
        # A symmetric 4-cycle: every node degree 2 (+self loop) — rows sum to 1.
        cycle = np.array([[0, 1, 2, 3], [1, 2, 3, 0]])
        g = Graph(4, cycle).symmetrize()
        norm = g.gcn_adjacency().toarray()
        np.testing.assert_allclose(norm, norm.T, atol=1e-12)
        np.testing.assert_allclose(norm.sum(axis=1), np.ones(4), atol=1e-12)

    def test_mean_adjacency_rows_sum_to_one(self):
        g = small_graph().symmetrize()
        rows = np.asarray(g.mean_adjacency().sum(axis=1)).reshape(-1)
        np.testing.assert_allclose(rows, np.ones(3))

    def test_isolated_node_handled(self):
        g = Graph(3, np.array([[0], [1]]))
        rows = np.asarray(g.mean_adjacency().sum(axis=1)).reshape(-1)
        assert rows[2] == 0.0

    def test_edge_weight_validation(self):
        with pytest.raises(ValueError):
            Graph(2, np.array([[0], [1]]), edge_weight=np.ones(2))

    def test_masks(self):
        g = small_graph()
        g.set_mask("train", np.array([True, False, True]))
        assert g.masks["train"].sum() == 2
        with pytest.raises(ValueError):
            g.set_mask("bad", np.ones(4, dtype=bool))

    def test_networkx_roundtrip(self):
        g = small_graph()
        back = Graph.from_networkx(g.to_networkx())
        assert back.num_nodes == 3
        assert set(map(tuple, back.edge_index.T)) == set(map(tuple, g.edge_index.T))

    def test_from_undirected_networkx_symmetrizes(self):
        g = Graph.from_networkx(nx.path_graph(3))
        pairs = set(map(tuple, g.edge_index.T))
        assert (0, 1) in pairs and (1, 0) in pairs

    def test_degrees(self):
        g = small_graph()
        np.testing.assert_allclose(g.degrees("in"), [1, 1, 1])
        np.testing.assert_allclose(g.degrees("out"), [1, 1, 1])


class TestEdgeUtils:
    def test_coalesce_removes_duplicates_keeps_max_weight(self):
        edges = np.array([[0, 0, 1], [1, 1, 0]])
        weights = np.array([1.0, 5.0, 2.0])
        out, w = coalesce_edge_index(edges, weights)
        assert out.shape[1] == 2
        lookup = {tuple(e): wt for e, wt in zip(out.T, w)}
        assert lookup[(0, 1)] == 5.0

    def test_remove_self_loops(self):
        edges = np.array([[0, 1, 1], [0, 1, 2]])
        out, _ = remove_self_loops(edges)
        assert out.shape[1] == 1
        assert tuple(out[:, 0]) == (1, 2)

    def test_symmetrize_empty(self):
        out, w = symmetrize_edge_index(np.zeros((2, 0), dtype=np.int64))
        assert out.shape == (2, 0) and w is None

    def test_edge_homophily(self):
        edges = np.array([[0, 1, 2], [1, 2, 0]])
        labels = np.array([0, 0, 1])
        assert edge_homophily(edges, labels) == pytest.approx(1 / 3)
        assert np.isnan(edge_homophily(np.zeros((2, 0), dtype=int), labels))

    def test_degree_statistics(self):
        stats = degree_statistics(np.array([[0, 1], [1, 1]]), 3)
        assert stats["max"] == 2.0
        assert stats["isolated"] == 2


class TestBipartiteGraph:
    def test_from_table_skips_nan(self):
        table = np.array([[1.0, np.nan], [3.0, 4.0]])
        g = BipartiteGraph.from_table(table)
        assert g.num_edges == 3
        np.testing.assert_allclose(
            g.observed_matrix(), table
        )

    def test_observed_mask(self):
        table = np.array([[1.0, np.nan], [3.0, 4.0]])
        mask = BipartiteGraph.from_table(table).observed_mask()
        np.testing.assert_array_equal(mask, ~np.isnan(table))

    def test_incidence_rows_sum_to_one(self):
        g = BipartiteGraph.from_table(RNG.normal(size=(5, 4)))
        inst_op, feat_op = g.incidence()
        np.testing.assert_allclose(np.asarray(inst_op.sum(axis=1)).reshape(-1), 1.0)
        np.testing.assert_allclose(np.asarray(feat_op.sum(axis=1)).reshape(-1), 1.0)

    def test_split_edges_partitions(self):
        g = BipartiteGraph.from_table(RNG.normal(size=(10, 4)))
        train, heldout = g.split_edges(0.25, np.random.default_rng(0))
        assert train.num_edges + len(heldout["value"]) == g.num_edges
        assert len(heldout["value"]) == 10

    def test_split_edges_invalid_fraction(self):
        g = BipartiteGraph.from_table(np.ones((2, 2)))
        with pytest.raises(ValueError):
            g.split_edges(0.0, np.random.default_rng(0))

    def test_out_of_range_edges_raise(self):
        with pytest.raises(ValueError):
            BipartiteGraph(2, 2, np.array([2]), np.array([0]), np.array([1.0]))

    def test_mismatched_arrays_raise(self):
        with pytest.raises(ValueError):
            BipartiteGraph(2, 2, np.array([0, 1]), np.array([0]), np.array([1.0]))


class TestHeteroGraph:
    def build(self):
        g = HeteroGraph({"instance": 4, "value": 3})
        g.add_edges(("instance", "has", "value"), np.array([[0, 1, 2, 3], [0, 0, 1, 2]]))
        return g

    def test_edge_registration_and_counts(self):
        g = self.build()
        assert g.num_edges() == 4
        assert g.num_edges(("instance", "has", "value")) == 4

    def test_add_edges_validates_range(self):
        g = self.build()
        with pytest.raises(ValueError):
            g.add_edges(("instance", "bad", "value"), np.array([[4], [0]]))
        with pytest.raises(KeyError):
            g.add_edges(("nope", "bad", "value"), np.array([[0], [0]]))

    def test_add_edges_appends(self):
        g = self.build()
        g.add_edges(("instance", "has", "value"), np.array([[0], [2]]))
        assert g.num_edges(("instance", "has", "value")) == 5

    def test_mean_operator_rows(self):
        g = self.build()
        op = g.mean_operator(("instance", "has", "value"))
        assert op.shape == (3, 4)
        rows = np.asarray(op.sum(axis=1)).reshape(-1)
        np.testing.assert_allclose(rows, np.ones(3))

    def test_reverse_edges(self):
        g = self.build()
        g.add_reverse_edges()
        assert ("value", "rev_has", "instance") in g.edge_indexes
        rev = g.edge_indexes[("value", "rev_has", "instance")]
        np.testing.assert_array_equal(rev, g.edge_indexes[("instance", "has", "value")][::-1])

    def test_features_and_labels_validated(self):
        g = self.build()
        with pytest.raises(ValueError):
            g.set_features("instance", np.ones((3, 2)))
        g.set_labels("instance", np.array([0, 1, 0, 1]))
        assert g.target_type == "instance"
        with pytest.raises(ValueError):
            g.set_labels("value", np.zeros(2))


class TestMultiplexGraph:
    def test_layers_share_nodes(self):
        g = MultiplexGraph(4, x=np.eye(4), y=np.arange(4))
        g.add_layer("a", np.array([[0, 1], [1, 0]]))
        g.add_layer("b", np.array([[2, 3], [3, 2]]))
        assert g.relations == ["a", "b"]
        assert g.layer("a").num_nodes == 4
        assert g.layer("b").x is g.x or np.array_equal(g.layer("b").x, g.x)

    def test_duplicate_relation_raises(self):
        g = MultiplexGraph(2)
        g.add_layer("a", np.array([[0], [1]]))
        with pytest.raises(KeyError):
            g.add_layer("a", np.array([[1], [0]]))

    def test_flatten_merges_and_coalesces(self):
        g = MultiplexGraph(3, x=np.eye(3))
        g.add_layer("a", np.array([[0, 1], [1, 0]]))
        g.add_layer("b", np.array([[0, 1], [1, 0]]))  # duplicate edges
        flat = g.flatten()
        assert flat.num_edges == 2  # symmetrized + coalesced

    def test_flatten_empty(self):
        flat = MultiplexGraph(3).flatten()
        assert flat.num_edges == 0


class TestHypergraph:
    def test_operator_shapes(self):
        inc = sp.csr_matrix(np.array([[1, 0], [1, 1], [0, 1]], dtype=float))
        h = Hypergraph(inc)
        assert h.num_nodes == 3 and h.num_hyperedges == 2
        assert h.hgnn_operator().shape == (3, 3)
        assert h.node_to_edge_operator().shape == (2, 3)
        assert h.edge_to_node_operator().shape == (3, 2)

    def test_node_to_edge_is_mean(self):
        inc = sp.csr_matrix(np.array([[1, 0], [1, 1], [0, 1]], dtype=float))
        h = Hypergraph(inc)
        x = np.array([[2.0], [4.0], [6.0]])
        out = h.node_to_edge_operator() @ x
        np.testing.assert_allclose(out, [[3.0], [5.0]])

    def test_from_value_table(self):
        values = np.array([[0, 2], [1, 2], [-1, 0]])
        h = Hypergraph.from_value_table(values, num_values=3)
        assert h.num_hyperedges == 3
        # row 2 has one missing cell -> hyperedge degree 1
        np.testing.assert_allclose(h.hyperedge_degrees(), [2, 2, 1])

    def test_duplicate_values_deduped(self):
        values = np.array([[1, 1]])
        h = Hypergraph.from_value_table(values, num_values=2)
        assert h.incidence[1, 0] == 1.0

    def test_negative_incidence_rejected(self):
        with pytest.raises(ValueError):
            Hypergraph(sp.csr_matrix(np.array([[-1.0]])))

    def test_label_length_checked(self):
        inc = sp.csr_matrix(np.ones((2, 3)))
        with pytest.raises(ValueError):
            Hypergraph(inc, y=np.zeros(2))
