"""Tests for pipeline helpers and remaining small gaps."""

import numpy as np
import pytest

from repro import nn
from repro.datasets import TabularDataset, make_fraud
from repro.pipeline import PipelineResult, _field_matrix, run_pipeline
from repro.tensor import Tensor, ops


class TestFieldMatrix:
    def test_one_column_per_field(self):
        ds = make_fraud(n=50, seed=0)
        fields = _field_matrix(ds)
        assert fields.shape == (50, ds.num_numerical + ds.num_categorical)

    def test_standardized_columns(self):
        ds = make_fraud(n=200, seed=0)
        fields = _field_matrix(ds)
        np.testing.assert_allclose(fields.mean(axis=0), 0.0, atol=1e-8)

    def test_missing_cells_become_zero(self):
        num = np.array([[1.0, np.nan], [2.0, 3.0], [3.0, 4.0]])
        cat = np.array([[0], [-1], [1]])
        ds = TabularDataset(num, cat, np.zeros(3), "binary", cardinalities=[2])
        fields = _field_matrix(ds)
        assert np.isfinite(fields).all()

    def test_numerical_only_dataset(self):
        ds = TabularDataset(np.random.default_rng(0).normal(size=(10, 3)),
                            None, np.zeros(10), "binary")
        assert _field_matrix(ds).shape == (10, 3)


class TestPipelineResult:
    def test_as_row_contains_metrics(self):
        result = PipelineResult(
            formulation="instance", network="gcn", test_accuracy=0.9,
            test_macro_f1=0.85, phase_seconds={"training": 1.0},
            num_parameters=100,
        )
        row = result.as_row()
        assert "instance" in row and "0.900" in row and "training" in row


class TestPipelineSemiSupervised:
    def test_train_fraction_controls_label_budget(self):
        ds = make_fraud(n=150, seed=0)
        result = run_pipeline(ds, formulation="instance", max_epochs=15,
                              train_fraction=0.1, val_fraction=0.1)
        assert 0.0 <= result.test_accuracy <= 1.0

    def test_class_weights_prevent_majority_collapse(self):
        # On imbalanced fraud the weighted pipeline should predict some
        # positives (macro F1 above the all-negative degenerate value ~0.48).
        ds = make_fraud(n=400, seed=0)
        result = run_pipeline(ds, formulation="multiplex", max_epochs=100)
        assert result.test_macro_f1 > 0.5


class TestSmallGaps:
    def test_tensor_ensure_passthrough(self):
        t = Tensor(np.ones(2))
        assert Tensor.ensure(t) is t
        coerced = Tensor.ensure([1.0, 2.0])
        assert isinstance(coerced, Tensor)

    def test_sequential_iterates(self):
        rng = np.random.default_rng(0)
        seq = nn.Sequential(nn.Linear(2, 3, rng), nn.Activation("relu"))
        assert len(seq) == 2
        assert len(list(seq)) == 2

    def test_identity_layer(self):
        layer = nn.Identity()
        x = Tensor(np.ones((2, 2)))
        assert layer(x) is x

    def test_elu_matches_definition(self):
        x = Tensor(np.array([-1.0, 0.5]))
        out = ops.elu(x, alpha=1.0)
        np.testing.assert_allclose(out.data, [np.exp(-1.0) - 1.0, 0.5])

    def test_optimizer_skips_gradless_params(self):
        rng = np.random.default_rng(0)
        used = nn.Linear(2, 2, rng)
        unused = nn.Linear(2, 2, rng)
        before = unused.weight.data.copy()
        opt = nn.Adam(used.parameters() + unused.parameters(), lr=0.1)
        loss = ops.sum(used(Tensor(np.ones((1, 2)))))
        opt.zero_grad()
        loss.backward()
        opt.step()
        np.testing.assert_allclose(unused.weight.data, before)

    def test_embedding_name_assignment(self):
        rng = np.random.default_rng(0)
        linear = nn.Linear(2, 2, rng)
        names = dict(linear.named_parameters())
        assert "weight" in names and "bias" in names
