"""Unit tests for GNN convolutions, readouts and the autoencoder."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import nn
from repro.gnn import (
    AttentionReadout,
    DenseGCNConv,
    DenseGNN,
    GATConv,
    GCNConv,
    GINConv,
    GatedGraphConv,
    GraphAutoencoder,
    HeteroGNN,
    HypergraphConv,
    HypergraphGNN,
    RGCNConv,
    SAGEConv,
    max_readout,
    mean_readout,
    sum_readout,
)
from repro.construction.intrinsic import hetero_from_dataset, hypergraph_from_dataset
from repro.construction.rules import knn_graph
from repro.datasets import make_fraud
from repro.graph import Graph, Hypergraph
from repro.tensor import Tensor, ops

RNG = np.random.default_rng(13)


def rng():
    return np.random.default_rng(17)


def path_graph(n=4, d=3):
    edges = np.array([[i, i + 1] for i in range(n - 1)]).T
    g = Graph(n, edges, x=RNG.normal(size=(n, d))).symmetrize()
    return g


class TestGCNConv:
    def test_matches_manual_computation(self):
        g = path_graph()
        conv = GCNConv(3, 2, rng())
        out = conv(Tensor(g.x), g.gcn_adjacency())
        manual = g.gcn_adjacency() @ (g.x @ conv.linear.weight.data + conv.linear.bias.data)
        np.testing.assert_allclose(out.data, manual, atol=1e-12)

    def test_gradient_reaches_weights(self):
        g = path_graph()
        conv = GCNConv(3, 2, rng())
        ops.sum(conv(Tensor(g.x), g.gcn_adjacency())).backward()
        assert conv.linear.weight.grad is not None


class TestSAGEConv:
    def test_concat_self_and_neighbors(self):
        g = path_graph()
        conv = SAGEConv(3, 2, rng())
        out = conv(Tensor(g.x), g.mean_adjacency())
        neighbor = g.mean_adjacency() @ g.x
        manual = np.concatenate([g.x, neighbor], axis=1) @ conv.linear.weight.data
        manual += conv.linear.bias.data
        np.testing.assert_allclose(out.data, manual, atol=1e-12)


class TestGINConv:
    def test_sum_aggregation_with_eps(self):
        g = path_graph()
        conv = GINConv(3, 4, rng())
        conv.eps.data[:] = 0.5
        out = conv(Tensor(g.x), g.adjacency())
        inner = 1.5 * g.x + g.adjacency() @ g.x
        manual = conv.mlp(Tensor(inner)).data
        np.testing.assert_allclose(out.data, manual, atol=1e-12)

    def test_eps_is_learnable(self):
        g = path_graph()
        conv = GINConv(3, 4, rng())
        ops.sum(conv(Tensor(g.x), g.adjacency())).backward()
        assert conv.eps.grad is not None


class TestGatedGraphConv:
    def test_shape_preserved(self):
        g = path_graph(d=6)
        conv = GatedGraphConv(6, rng(), num_steps=3)
        out = conv(Tensor(g.x), g.mean_adjacency(add_self_loops=True))
        assert out.shape == (4, 6)

    def test_invalid_steps(self):
        with pytest.raises(ValueError):
            GatedGraphConv(4, rng(), num_steps=0)


class TestGATConv:
    def test_output_shapes(self):
        g = path_graph()
        conv = GATConv(3, 5, rng(), num_heads=2, concat_heads=True)
        assert conv(Tensor(g.x), g.edge_index).shape == (4, 10)
        conv_avg = GATConv(3, 5, rng(), num_heads=2, concat_heads=False)
        assert conv_avg(Tensor(g.x), g.edge_index).shape == (4, 5)

    def test_attention_weights_normalized(self):
        # With softmax over incoming edges, messages are convex combinations:
        # if all node features are equal, output equals the self-transformed value.
        n = 5
        x = np.ones((n, 3))
        edges = np.array([[i, (i + 1) % n] for i in range(n)]).T
        conv = GATConv(3, 4, rng(), num_heads=3)
        out = conv(Tensor(x), edges)
        np.testing.assert_allclose(out.data - out.data[0], 0.0, atol=1e-10)

    def test_edge_features_modulate_attention(self):
        g = path_graph()
        conv = GATConv(3, 4, rng(), num_heads=2, edge_dim=1)
        edge_feat = Tensor(RNG.normal(size=(g.num_edges, 1)))
        out1 = conv(Tensor(g.x), g.edge_index, edge_feat)
        out2 = conv(Tensor(g.x), g.edge_index, Tensor(np.zeros((g.num_edges, 1))))
        assert not np.allclose(out1.data, out2.data)

    def test_edge_dim_requires_features(self):
        g = path_graph()
        conv = GATConv(3, 4, rng(), edge_dim=2)
        with pytest.raises(ValueError):
            conv(Tensor(g.x), g.edge_index)

    def test_isolated_node_attends_to_self(self):
        x = RNG.normal(size=(3, 3))
        edges = np.array([[0], [1]])  # node 2 isolated
        conv = GATConv(3, 4, rng())
        out = conv(Tensor(x), edges)
        assert np.all(np.isfinite(out.data))


class TestDenseConvs:
    def test_dense_matches_sparse_gcn(self):
        g = path_graph()
        dense_conv = DenseGCNConv(3, 2, rng())
        sparse_conv = GCNConv(3, 2, rng())
        sparse_conv.linear.weight.data = dense_conv.linear.weight.data.copy()
        sparse_conv.linear.bias.data = dense_conv.linear.bias.data.copy()
        adj = g.gcn_adjacency()
        out_dense = dense_conv(Tensor(g.x), Tensor(adj.toarray()))
        out_sparse = sparse_conv(Tensor(g.x), adj)
        np.testing.assert_allclose(out_dense.data, out_sparse.data, atol=1e-12)

    def test_dense_gnn_gradients_reach_adjacency(self):
        adj = Tensor(np.abs(RNG.normal(size=(4, 4))), requires_grad=True)
        net = DenseGNN(3, (8,), 2, rng())
        out = ops.sum(net(Tensor(RNG.normal(size=(4, 3))), adj))
        out.backward()
        assert adj.grad is not None

    def test_batched_dense_conv(self):
        conv = DenseGCNConv(3, 2, rng())
        x = Tensor(RNG.normal(size=(5, 4, 3)))  # batch of 5 graphs, 4 nodes
        adj = Tensor(np.tile(np.eye(4), (5, 1, 1)))
        assert conv(x, adj).shape == (5, 4, 2)


class TestRGCN:
    def test_per_relation_weights(self):
        conv = RGCNConv(3, 2, num_relations=2, rng=rng())
        x = Tensor(RNG.normal(size=(4, 3)))
        ops_list = [sp.eye(4, format="csr"), sp.csr_matrix((4, 4))]
        out = conv(x, ops_list)
        assert out.shape == (4, 2)

    def test_wrong_operator_count_raises(self):
        conv = RGCNConv(3, 2, num_relations=2, rng=rng())
        with pytest.raises(ValueError):
            conv(Tensor(np.ones((4, 3))), [sp.eye(4, format="csr")])

    def test_zero_relations_rejected(self):
        with pytest.raises(ValueError):
            RGCNConv(3, 2, num_relations=0, rng=rng())


class TestHeteroGNN:
    def test_forward_shapes(self):
        ds = make_fraud(n=60, seed=0)
        graph = hetero_from_dataset(ds)
        net = HeteroGNN(graph, hidden_dim=8, out_dim=2, rng=rng())
        out = net()
        assert out.shape == (60, 2)
        assert net.embed().shape[0] == 60

    def test_trains(self):
        ds = make_fraud(n=60, seed=0)
        graph = hetero_from_dataset(ds)
        net = HeteroGNN(graph, hidden_dim=8, out_dim=2, rng=rng())
        opt = nn.Adam(net.parameters(), lr=0.05)
        first = None
        for _ in range(20):
            loss = nn.cross_entropy(net(), ds.y)
            first = first if first is not None else loss.item()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < first


class TestHypergraphGNN:
    def test_forward_shapes(self):
        ds = make_fraud(n=50, seed=0)
        hg = hypergraph_from_dataset(ds, n_bins=3)
        net = HypergraphGNN(hg, hidden_dim=8, out_dim=2, rng=rng())
        assert net().shape == (50, 2)
        assert net.embed().shape == (50, 8)

    def test_hypergraph_conv_shape(self):
        inc = sp.csr_matrix(np.array([[1, 0], [1, 1], [0, 1]], dtype=float))
        hg = Hypergraph(inc)
        conv = HypergraphConv(4, 6, rng())
        out = conv(Tensor(RNG.normal(size=(3, 4))), hg.hgnn_operator())
        assert out.shape == (3, 6)


class TestGraphAutoencoder:
    def test_loss_decreases(self):
        g = knn_graph(RNG.normal(size=(40, 5)), k=5)
        model = GraphAutoencoder(5, (8,), 4, rng())
        opt = nn.Adam(model.parameters(), lr=0.02)
        features = Tensor(g.x)
        adjacency = g.gcn_adjacency()
        loss_rng = np.random.default_rng(0)
        losses = []
        for _ in range(30):
            loss = model.reconstruction_loss(features, adjacency, g.edge_index, loss_rng)
            losses.append(loss.item())
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert losses[-1] < losses[0]

    def test_anomaly_scores_shape_and_sign(self):
        g = knn_graph(RNG.normal(size=(20, 4)), k=3)
        model = GraphAutoencoder(4, (8,), 4, rng())
        scores = model.anomaly_scores(Tensor(g.x), g.gcn_adjacency())
        assert scores.shape == (20,)
        assert np.all(scores >= 0)

    def test_decode_edges_is_inner_product(self):
        model = GraphAutoencoder(4, (), 3, rng())
        z = Tensor(RNG.normal(size=(5, 3)))
        pairs = np.array([[0, 1], [2, 3]])
        out = model.decode_edges(z, pairs)
        np.testing.assert_allclose(out.data[0], z.data[0] @ z.data[2], atol=1e-12)


class TestReadouts:
    def test_shapes(self):
        h = Tensor(RNG.normal(size=(6, 4, 8)))
        assert sum_readout(h).shape == (6, 8)
        assert mean_readout(h).shape == (6, 8)
        assert max_readout(h).shape == (6, 8)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            sum_readout(Tensor(np.ones((4, 8))))

    def test_permutation_invariance(self):
        h = RNG.normal(size=(3, 5, 8))
        perm = RNG.permutation(5)
        readout = AttentionReadout(8, rng())
        out1 = readout(Tensor(h)).data
        out2 = readout(Tensor(h[:, perm, :])).data
        np.testing.assert_allclose(out1, out2, atol=1e-10)
        np.testing.assert_allclose(
            sum_readout(Tensor(h)).data, sum_readout(Tensor(h[:, perm])).data, atol=1e-12
        )

    def test_attention_readout_is_convex_combination(self):
        h = np.ones((2, 4, 3)) * np.arange(1, 5).reshape(1, 4, 1)
        readout = AttentionReadout(3, rng())
        out = readout(Tensor(h)).data
        assert np.all(out >= 1.0 - 1e-9) and np.all(out <= 4.0 + 1e-9)
