"""Tests for the ``repro.serving`` subsystem.

Covers the artifact round-trip (save → load → bitwise-equal weights and
identical predictions), inductive correctness against the transductive
pipeline, the LRU prediction cache, eval-mode guarantees (trainer and
engine), the micro-batcher, and an HTTP smoke test that boots the server
on an ephemeral port.
"""

import json
import pathlib
import subprocess
import sys
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import nn
from repro.datasets import (
    TabularPreprocessor,
    make_correlated_instances,
    make_fraud,
)
from repro.pipeline import _field_matrix, run_pipeline
from repro.serving import (
    InferenceEngine,
    MicroBatcher,
    ModelArtifact,
    PredictionServer,
)
from repro.training.trainer import Trainer


@pytest.fixture(scope="module")
def instance_result():
    dataset = make_correlated_instances(n=220, seed=0, cluster_strength=2.0)
    result = run_pipeline(
        dataset, formulation="instance", network="gcn", max_epochs=40, seed=0
    )
    return dataset, result


@pytest.fixture(scope="module")
def feature_result():
    dataset = make_fraud(n=200, seed=0)
    result = run_pipeline(dataset, formulation="feature", max_epochs=30, seed=0)
    return dataset, result


def _softmax(logits):
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


# ----------------------------------------------------------------------
# preprocessor fit/transform separation
# ----------------------------------------------------------------------
class TestTabularPreprocessor:
    def test_onehot_matches_to_matrix_when_fit_on_full_data(self):
        ds = make_fraud(n=80, seed=1)
        prep = TabularPreprocessor(mode="onehot").fit(ds)
        np.testing.assert_allclose(prep.transform_dataset(ds), ds.to_matrix())

    def test_fields_matches_field_matrix(self):
        ds = make_fraud(n=80, seed=1)
        prep = TabularPreprocessor(mode="fields").fit(ds)
        np.testing.assert_allclose(
            prep.transform_dataset(ds), _field_matrix(ds)
        )

    def test_frozen_statistics_are_reused_not_refit(self):
        # The train/serve-skew regression: transforming new rows must use the
        # statistics of the *fitted* data, not refit on the incoming rows.
        ds = make_correlated_instances(n=60, seed=2)
        prep = TabularPreprocessor(mode="onehot").fit(ds)
        shifted = ds.numerical + 100.0
        transformed = prep.transform(shifted)
        assert transformed.mean() > 10.0  # a refit would re-center to ~0

    def test_out_of_vocabulary_category_gets_zero_block(self):
        ds = make_fraud(n=50, seed=0)
        prep = TabularPreprocessor(mode="onehot").fit(ds)
        weird = np.array([[ds.cardinalities[0] + 5, -1]])
        out = prep.transform(ds.numerical[:1], weird)
        onehot_part = out[:, ds.num_numerical:]
        assert np.all(onehot_part == 0.0)

    def test_state_round_trip(self):
        ds = make_fraud(n=60, seed=3)
        prep = TabularPreprocessor(mode="fields").fit(ds)
        arrays, meta = prep.state()
        clone = TabularPreprocessor.from_state(arrays, meta)
        np.testing.assert_array_equal(
            prep.transform_dataset(ds), clone.transform_dataset(ds)
        )

    def test_pipeline_fits_scaler_on_training_split_only(self, instance_result):
        dataset, result = instance_result
        prep = result.state.preprocessor
        # Statistics fitted on the train split differ from full-data stats.
        full = TabularPreprocessor(mode="onehot").fit(dataset)
        assert not np.allclose(prep.num_mean_, full.num_mean_)


# ----------------------------------------------------------------------
# artifact round-trips
# ----------------------------------------------------------------------
class TestArtifactRoundTrip:
    @pytest.mark.parametrize("which", ["instance", "feature"])
    def test_save_load_bitwise_state_and_identical_predictions(
        self, which, tmp_path, instance_result, feature_result
    ):
        dataset, result = instance_result if which == "instance" else feature_result
        artifact = result.export_artifact()
        npz = artifact.save(tmp_path / "model")
        assert npz.exists() and npz.with_suffix(".json").exists()

        loaded = ModelArtifact.load(npz)
        assert set(loaded.state_dict) == set(artifact.state_dict)
        for name, value in artifact.state_dict.items():
            np.testing.assert_array_equal(loaded.state_dict[name], value)

        held_out = dataset.numerical[-12:], dataset.categorical[-12:]
        before = InferenceEngine(artifact, cache_size=0).predict_batch(*held_out)
        after = InferenceEngine(loaded, cache_size=0).predict_batch(*held_out)
        np.testing.assert_array_equal(before, after)

    def test_load_accepts_either_file(self, tmp_path, feature_result):
        _, result = feature_result
        npz = result.export_artifact().save(tmp_path / "m")
        for path in (npz, npz.with_suffix(".json"), tmp_path / "m"):
            assert ModelArtifact.load(path).formulation == "feature"

    def test_missing_sidecar_raises(self, tmp_path, feature_result):
        _, result = feature_result
        npz = result.export_artifact().save(tmp_path / "m")
        npz.with_suffix(".json").unlink()
        with pytest.raises(FileNotFoundError):
            ModelArtifact.load(npz)

    def test_unservable_formulation_refuses_export(self):
        # Every built-in formulation now serves; the capability check still
        # guards plug-ins that declare ``servable = False``.
        from repro import formulations
        from repro.formulations.hypergraph import (
            FittedHypergraph,
            HypergraphFormulation,
        )

        class BoundFitted(FittedHypergraph):
            name = "bound"
            servable = False

        class BoundFormulation(HypergraphFormulation):
            name = "bound"
            fitted_cls = BoundFitted

        formulations.register(BoundFormulation())
        try:
            ds = make_fraud(n=120, seed=0)
            result = run_pipeline(ds, formulation="bound", max_epochs=2, seed=0)
            with pytest.raises(NotImplementedError, match="bound"):
                result.export_artifact()
        finally:
            formulations.unregister("bound")


# ----------------------------------------------------------------------
# inductive correctness
# ----------------------------------------------------------------------
class TestInductiveCorrectness:
    def test_pool_rows_match_transductive_instance(self, instance_result):
        dataset, result = instance_result
        engine = InferenceEngine(result.export_artifact(), cache_size=0)
        idx = np.arange(30)
        inductive = engine.predict_batch(dataset.numerical[idx])
        transductive = _softmax(result.state.logits()[idx])
        agreement = (
            inductive.argmax(axis=1) == transductive.argmax(axis=1)
        ).mean()
        assert agreement >= 0.9
        assert np.abs(inductive - transductive).mean() < 0.05

    def test_pool_rows_match_transductive_feature_exactly(self, feature_result):
        dataset, result = feature_result
        engine = InferenceEngine(result.export_artifact(), cache_size=0)
        inductive = engine.predict_batch(
            dataset.numerical[:15], dataset.categorical[:15]
        )
        transductive = _softmax(result.state.logits()[:15])
        np.testing.assert_allclose(inductive, transductive, atol=1e-10)

    def test_queries_do_not_influence_each_other(self, instance_result):
        # Attachment edges are directed pool→query, so pool degrees (and
        # hence the GNN's normalization) are identical whatever else shares
        # the batch: scoring rows together vs alone matches exactly.
        dataset, result = instance_result
        engine = InferenceEngine(result.export_artifact(), cache_size=0)
        rows = dataset.numerical[:2] + 0.03
        together = engine.predict_batch(rows)
        alone = np.stack([engine.predict(rows[0]), engine.predict(rows[1])])
        np.testing.assert_allclose(together, alone, atol=1e-10)


# ----------------------------------------------------------------------
# LRU prediction cache
# ----------------------------------------------------------------------
class TestPredictionCache:
    def test_hit_returns_identical_array_without_second_forward(
        self, instance_result
    ):
        dataset, result = instance_result
        engine = InferenceEngine(result.export_artifact(), cache_size=8)
        row = dataset.numerical[0] + 0.01
        first = engine.predict(row)
        passes = engine.stats["forward_passes"]
        second = engine.predict(row)
        assert second is first  # the very same array, not a recompute
        assert engine.stats["forward_passes"] == passes
        assert engine.stats["cache_hits"] == 1

    def test_cache_is_bounded(self, feature_result):
        dataset, result = feature_result
        engine = InferenceEngine(result.export_artifact(), cache_size=2)
        for i in range(5):
            engine.predict(dataset.numerical[i], dataset.categorical[i])
        assert len(engine._cache) <= 2

    def test_batch_deduplicates_repeated_rows(self, feature_result):
        dataset, result = feature_result
        engine = InferenceEngine(result.export_artifact(), cache_size=8)
        idx = np.array([0, 1, 0, 1, 0])
        probs = engine.predict_batch(dataset.numerical[idx], dataset.categorical[idx])
        assert engine.stats["forward_rows"] == 2  # only the distinct rows
        np.testing.assert_array_equal(probs[0], probs[2])
        np.testing.assert_array_equal(probs[1], probs[3])

    def test_cache_disabled(self, feature_result):
        dataset, result = feature_result
        engine = InferenceEngine(result.export_artifact(), cache_size=0)
        engine.predict(dataset.numerical[0], dataset.categorical[0])
        engine.predict(dataset.numerical[0], dataset.categorical[0])
        assert engine.stats["forward_passes"] == 2
        assert engine.stats["cache_hits"] == 0


# ----------------------------------------------------------------------
# eval-mode guarantees
# ----------------------------------------------------------------------
class TestEvalMode:
    def test_trainer_toggles_train_and_eval(self):
        from repro.tensor import Tensor

        rng = np.random.default_rng(0)
        model = nn.MLP(4, (8,), 2, rng, dropout=0.5)
        x = Tensor(rng.normal(size=(20, 4)))
        y = rng.integers(0, 2, size=20)
        modes = {"loss": [], "val": []}

        def loss_fn():
            modes["loss"].append(model.training)
            return nn.cross_entropy(model(x), y)

        def val_fn():
            modes["val"].append(model.training)
            return 0.0

        optimizer = nn.Adam(model.parameters(), lr=0.01)
        Trainer(model, optimizer, max_epochs=3, patience=None).fit(loss_fn, val_fn)
        assert all(modes["loss"]), "loss closure must run in train mode"
        assert not any(modes["val"]), "validation must run in eval mode"
        assert model.training is False, "fit must leave the model in eval mode"

    def test_engine_always_runs_eval_mode(self, instance_result, feature_result):
        for dataset, result in (instance_result, feature_result):
            result.state.model.train()  # sabotage: leave the model in train mode
            artifact = result.export_artifact()
            built = []
            original = artifact.build_model
            artifact.build_model = lambda graph=None: (
                built.append(original(graph)) or built[-1]
            )
            engine = InferenceEngine(artifact, cache_size=0)
            engine.predict_batch(dataset.numerical[:2], dataset.categorical[:2])
            assert built, "engine never built a model"
            assert all(m.training is False for m in built)
            result.state.model.eval()


# ----------------------------------------------------------------------
# micro-batcher
# ----------------------------------------------------------------------
class TestMicroBatcher:
    def test_concurrent_submissions_coalesce_and_match_batch_path(
        self, feature_result
    ):
        dataset, result = feature_result
        engine = InferenceEngine(result.export_artifact(), cache_size=0)
        expected = engine.predict_batch(dataset.numerical[:8], dataset.categorical[:8])
        with MicroBatcher(engine, max_batch_size=8, max_delay_ms=60.0) as batcher:
            with ThreadPoolExecutor(8) as pool:
                got = list(
                    pool.map(
                        lambda i: batcher.submit(
                            dataset.numerical[i], dataset.categorical[i]
                        ),
                        range(8),
                    )
                )
            assert batcher.stats["rows"] == 8
            assert batcher.stats["largest_batch"] >= 2, "no coalescing happened"
        np.testing.assert_allclose(np.stack(got), expected, atol=1e-12)

    def test_flush_on_max_batch_size(self, feature_result):
        dataset, result = feature_result
        engine = InferenceEngine(result.export_artifact(), cache_size=0)
        with MicroBatcher(engine, max_batch_size=1, max_delay_ms=1000.0) as batcher:
            batcher.submit(dataset.numerical[0], dataset.categorical[0])
            assert batcher.stats == {"batches": 1, "rows": 1, "largest_batch": 1}

    def test_errors_propagate_to_caller(self, feature_result):
        _, result = feature_result
        engine = InferenceEngine(result.export_artifact(), cache_size=0)
        with MicroBatcher(engine, max_delay_ms=0.0) as batcher:
            with pytest.raises(ValueError):
                batcher.submit(np.zeros(3))  # wrong row width

    def test_submit_after_close_raises(self, feature_result):
        _, result = feature_result
        engine = InferenceEngine(result.export_artifact(), cache_size=0)
        batcher = MicroBatcher(engine)
        batcher.close()
        with pytest.raises(RuntimeError):
            batcher.submit(np.zeros(1))


# ----------------------------------------------------------------------
# HTTP server smoke tests
# ----------------------------------------------------------------------
class TestPredictionServer:
    def test_boot_post_one_row_well_formed_json(self, instance_result):
        dataset, result = instance_result
        artifact = result.export_artifact()
        with PredictionServer(artifact, port=0, max_delay_ms=1.0) as server:
            body = json.dumps({"numerical": dataset.numerical[0].tolist()}).encode()
            request = urllib.request.Request(server.url + "/predict", data=body)
            with urllib.request.urlopen(request, timeout=10) as response:
                payload = json.loads(response.read())
            assert payload["rows"] == 1
            assert len(payload["predictions"]) == 1
            assert 0 <= payload["predictions"][0] < artifact.num_classes
            probs = payload["probabilities"][0]
            assert len(probs) == artifact.num_classes
            assert abs(sum(probs) - 1.0) < 1e-3

            with urllib.request.urlopen(server.url + "/healthz", timeout=10) as r:
                health = json.loads(r.read())
            assert health["status"] == "ok"
            assert health["artifact"]["formulation"] == "instance"
            # Operators can verify which inference path the deployment runs.
            assert health["network"] == artifact.network
            assert health["incremental"] is True
            assert health["pool_rows"] == artifact.pool_x.shape[0]

    def test_healthz_reports_retrieval_index(self, instance_result):
        dataset, result = instance_result
        artifact = result.export_artifact()
        with PredictionServer(artifact, port=0, index="ivf", nprobe=4) as server:
            with urllib.request.urlopen(server.url + "/healthz", timeout=10) as r:
                health = json.loads(r.read())
            assert health["index"] == "ivf"
            assert health["nprobe"] == 4
            assert health["index_build_ms"] > 0.0
            body = json.dumps(
                {"numerical": dataset.numerical[0].tolist()}
            ).encode()
            request = urllib.request.Request(server.url + "/predict", data=body)
            urllib.request.urlopen(request, timeout=10).read()
            with urllib.request.urlopen(server.url + "/metrics", timeout=10) as r:
                text = r.read().decode()
            assert 'repro_engine_retrieval_recall{formulation="instance"}' in text
            assert "repro_engine_retrieval_probed_cells_total" in text
            assert "repro_engine_retrieval_candidates_total" in text
        # Default deployments keep (and report) the exact scan.
        with PredictionServer(artifact, port=0) as server:
            with urllib.request.urlopen(server.url + "/healthz", timeout=10) as r:
                health = json.loads(r.read())
            assert health["index"] == "exact"
            assert health["nprobe"] is None

    def test_shutdown_without_start_returns(self, feature_result):
        # Regression: BaseServer.shutdown() blocks on an event only
        # serve_forever sets; shutting down a constructed-but-never-started
        # server must not hang (the constructor already binds the port).
        _, result = feature_result
        server = PredictionServer(result.export_artifact(), port=0)
        done = threading.Event()

        def stop():
            server.shutdown()
            done.set()

        threading.Thread(target=stop, daemon=True).start()
        assert done.wait(timeout=10), "shutdown() hung on a never-started server"

    def test_batch_endpoint_and_errors(self, feature_result):
        dataset, result = feature_result
        with PredictionServer(result.export_artifact(), port=0) as server:
            rows = [
                {
                    "numerical": dataset.numerical[i].tolist(),
                    "categorical": dataset.categorical[i].tolist(),
                }
                for i in range(3)
            ]
            body = json.dumps({"rows": rows}).encode()
            request = urllib.request.Request(server.url + "/predict", data=body)
            with urllib.request.urlopen(request, timeout=10) as response:
                assert json.loads(response.read())["rows"] == 3

            bad = urllib.request.Request(server.url + "/predict", data=b"not json")
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(bad, timeout=10)
            assert err.value.code == 400

            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(server.url + "/nope", timeout=10)
            assert err.value.code == 404


# ----------------------------------------------------------------------
# application export paths
# ----------------------------------------------------------------------
class TestApplicationExports:
    def test_fraud_export_is_serve_ready(self, tmp_path):
        from repro.applications import export_fraud_artifact

        dataset = make_fraud(n=150, seed=0)
        artifact = export_fraud_artifact(dataset, path=tmp_path / "fraud", epochs=5)
        assert artifact.metadata["application"] == "fraud"
        assert (tmp_path / "fraud.npz").exists()
        engine = InferenceEngine(ModelArtifact.load(tmp_path / "fraud.npz"))
        probs = engine.predict(dataset.numerical[0], dataset.categorical[0])
        assert probs.shape == (2,)

    def test_ctr_export_is_serve_ready(self, tmp_path):
        from repro.applications import export_ctr_artifact
        from repro.datasets import make_ctr

        dataset = make_ctr(n=200, seed=0)
        artifact = export_ctr_artifact(dataset, path=tmp_path / "ctr", epochs=5)
        assert artifact.formulation == "feature"
        assert (tmp_path / "ctr.json").exists()
        engine = InferenceEngine(ModelArtifact.load(tmp_path / "ctr"))
        probs = engine.predict(dataset.numerical[0], dataset.categorical[0])
        assert probs.shape == (2,)


# ----------------------------------------------------------------------
# CLI / packaging
# ----------------------------------------------------------------------
class TestEntryPoints:
    def test_console_script_declared_in_setup(self):
        setup_py = pathlib.Path(__file__).resolve().parents[1] / "setup.py"
        assert "gnn4tdl-serve=repro.serving.server:main" in setup_py.read_text()

    def test_python_dash_m_help(self):
        src = pathlib.Path(__file__).resolve().parents[1] / "src"
        proc = subprocess.run(
            [sys.executable, "-m", "repro.serving", "--help"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
            timeout=60,
        )
        assert proc.returncode == 0
        assert "--artifact" in proc.stdout
        assert "--index" in proc.stdout
        assert "--nprobe" in proc.stdout
