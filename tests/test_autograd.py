"""Unit tests for the autograd engine: every op checked against finite differences."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.tensor import Tensor, no_grad, ops


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference numerical gradient of scalar-valued fn."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn(x)
        flat[i] = orig - eps
        down = fn(x)
        flat[i] = orig
        grad_flat[i] = (up - down) / (2 * eps)
    return grad


def check_unary(op, x_data, tol=1e-5, **kwargs):
    x = Tensor(x_data.copy(), requires_grad=True)
    out = op(x, **kwargs)
    loss = ops.sum(ops.mul(out, out))
    loss.backward()

    def scalar_fn(arr):
        return float((op(Tensor(arr), **kwargs).data ** 2).sum())

    expected = numeric_grad(scalar_fn, x_data.copy())
    np.testing.assert_allclose(x.grad, expected, rtol=tol, atol=tol)


RNG = np.random.default_rng(0)


class TestElementwiseGrads:
    def test_add_broadcast(self):
        a = Tensor(RNG.normal(size=(4, 3)), requires_grad=True)
        b = Tensor(RNG.normal(size=(3,)), requires_grad=True)
        out = ops.sum(ops.add(a, b))
        out.backward()
        np.testing.assert_allclose(a.grad, np.ones((4, 3)))
        np.testing.assert_allclose(b.grad, np.full(3, 4.0))

    def test_mul_grads(self):
        a_data = RNG.normal(size=(5, 2))
        b_data = RNG.normal(size=(5, 2))
        a = Tensor(a_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        ops.sum(ops.mul(a, b)).backward()
        np.testing.assert_allclose(a.grad, b_data)
        np.testing.assert_allclose(b.grad, a_data)

    def test_div_grad(self):
        a_data = RNG.normal(size=(4,)) + 3.0
        b_data = RNG.normal(size=(4,)) + 3.0
        a = Tensor(a_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        ops.sum(ops.div(a, b)).backward()
        np.testing.assert_allclose(a.grad, 1.0 / b_data)
        np.testing.assert_allclose(b.grad, -a_data / b_data**2)

    @pytest.mark.parametrize(
        "op",
        [ops.exp, ops.tanh, ops.sigmoid, ops.relu, ops.leaky_relu, ops.elu, ops.absolute],
    )
    def test_unary_against_numeric(self, op):
        x = RNG.normal(size=(6, 3)) + 0.05  # offset avoids kinks at 0
        check_unary(op, x)

    def test_log_grad(self):
        x = np.abs(RNG.normal(size=(5,))) + 0.5
        check_unary(ops.log, x)

    def test_power_grad(self):
        x = np.abs(RNG.normal(size=(5,))) + 0.5
        check_unary(lambda t: ops.power(t, 3.0), x)

    def test_sqrt_at_positive(self):
        x = np.abs(RNG.normal(size=(5,))) + 0.5
        check_unary(lambda t: ops.power(t, 0.5), x)

    def test_maximum_grad_routes_to_larger(self):
        a = Tensor(np.array([1.0, 5.0]), requires_grad=True)
        b = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        ops.sum(ops.maximum(a, b)).backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 0.0])

    def test_clip_grad(self):
        x = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        ops.sum(ops.clip(x, -1.0, 1.0)).backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_where_routes_gradient(self):
        cond = np.array([True, False, True])
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        ops.sum(ops.where(cond, a, b)).backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0, 0.0])


class TestMatmulGrads:
    def test_matmul_2d(self):
        a_data = RNG.normal(size=(3, 4))
        b_data = RNG.normal(size=(4, 2))
        a = Tensor(a_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        out = ops.matmul(a, b)
        g = RNG.normal(size=(3, 2))
        ops.sum(ops.mul(out, Tensor(g))).backward()
        np.testing.assert_allclose(a.grad, g @ b_data.T)
        np.testing.assert_allclose(b.grad, a_data.T @ g)

    def test_matmul_batched(self):
        a_data = RNG.normal(size=(2, 3, 4))
        b_data = RNG.normal(size=(2, 4, 5))
        a = Tensor(a_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        ops.sum(ops.matmul(a, b)).backward()
        ones = np.ones((2, 3, 5))
        np.testing.assert_allclose(a.grad, ones @ np.swapaxes(b_data, -1, -2))
        np.testing.assert_allclose(b.grad, np.swapaxes(a_data, -1, -2) @ ones)

    def test_spmm_matches_dense(self):
        dense = (RNG.random((5, 5)) < 0.4).astype(float)
        matrix = sp.csr_matrix(dense)
        x_data = RNG.normal(size=(5, 3))
        x = Tensor(x_data, requires_grad=True)
        out = ops.spmm(matrix, x)
        np.testing.assert_allclose(out.data, dense @ x_data)
        g = RNG.normal(size=(5, 3))
        ops.sum(ops.mul(out, Tensor(g))).backward()
        np.testing.assert_allclose(x.grad, dense.T @ g)


class TestSoftmaxGrads:
    def test_softmax_rows_sum_to_one(self):
        x = Tensor(RNG.normal(size=(4, 6)))
        out = ops.softmax(x, axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4), atol=1e-12)

    def test_softmax_grad_numeric(self):
        x = RNG.normal(size=(3, 4))
        check_unary(lambda t: ops.softmax(t, axis=-1), x)

    def test_log_softmax_grad_numeric(self):
        x = RNG.normal(size=(3, 4))
        check_unary(lambda t: ops.log_softmax(t, axis=-1), x)

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(RNG.normal(size=(3, 4)))
        np.testing.assert_allclose(
            ops.log_softmax(x).data, np.log(ops.softmax(x).data), atol=1e-10
        )


class TestReductionGrads:
    def test_sum_axis(self):
        x = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        ops.sum(ops.sum(x, axis=0)).backward()
        np.testing.assert_allclose(x.grad, np.ones((3, 4)))

    def test_mean_grad(self):
        x = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        ops.mean(x).backward()
        np.testing.assert_allclose(x.grad, np.full((3, 4), 1.0 / 12.0))

    def test_mean_axis_keepdims(self):
        x = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        out = ops.mean(x, axis=1, keepdims=True)
        assert out.shape == (3, 1)
        ops.sum(out).backward()
        np.testing.assert_allclose(x.grad, np.full((3, 4), 0.25))

    def test_max_grad_goes_to_argmax(self):
        x = Tensor(np.array([[1.0, 3.0], [5.0, 2.0]]), requires_grad=True)
        ops.sum(ops.max(x, axis=1)).backward()
        np.testing.assert_allclose(x.grad, [[0.0, 1.0], [1.0, 0.0]])

    def test_max_ties_split_gradient(self):
        x = Tensor(np.array([[2.0, 2.0]]), requires_grad=True)
        ops.sum(ops.max(x, axis=1)).backward()
        np.testing.assert_allclose(x.grad, [[0.5, 0.5]])


class TestShapeOps:
    def test_reshape_roundtrip(self):
        x = Tensor(RNG.normal(size=(2, 6)), requires_grad=True)
        out = x.reshape(3, 4)
        ops.sum(ops.mul(out, out)).backward()
        np.testing.assert_allclose(x.grad, 2 * x.data)

    def test_transpose_grad(self):
        x = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        ops.sum(ops.mul(ops.transpose(x), Tensor(np.ones((3, 2))))).backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_concat_splits_grad(self):
        a = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(RNG.normal(size=(4, 3)), requires_grad=True)
        out = ops.concat([a, b], axis=0)
        assert out.shape == (6, 3)
        g = RNG.normal(size=(6, 3))
        ops.sum(ops.mul(out, Tensor(g))).backward()
        np.testing.assert_allclose(a.grad, g[:2])
        np.testing.assert_allclose(b.grad, g[2:])

    def test_stack_grad(self):
        a = Tensor(RNG.normal(size=(3,)), requires_grad=True)
        b = Tensor(RNG.normal(size=(3,)), requires_grad=True)
        out = ops.stack([a, b], axis=0)
        assert out.shape == (2, 3)
        ops.sum(out).backward()
        np.testing.assert_allclose(a.grad, np.ones(3))
        np.testing.assert_allclose(b.grad, np.ones(3))

    def test_getitem_slice_grad(self):
        x = Tensor(RNG.normal(size=(5, 3)), requires_grad=True)
        ops.sum(x[1:3]).backward()
        expected = np.zeros((5, 3))
        expected[1:3] = 1.0
        np.testing.assert_allclose(x.grad, expected)


class TestGatherScatter:
    def test_gather_rows_duplicates_accumulate(self):
        x = Tensor(RNG.normal(size=(4, 2)), requires_grad=True)
        idx = np.array([0, 0, 3])
        out = ops.gather_rows(x, idx)
        ops.sum(out).backward()
        expected = np.zeros((4, 2))
        expected[0] = 2.0
        expected[3] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_segment_sum_forward_and_grad(self):
        x = Tensor(np.arange(8, dtype=float).reshape(4, 2), requires_grad=True)
        seg = np.array([0, 1, 0, 2])
        out = ops.segment_sum(x, seg, 3)
        np.testing.assert_allclose(out.data, [[4.0, 6.0], [2.0, 3.0], [6.0, 7.0]])
        g = RNG.normal(size=(3, 2))
        ops.sum(ops.mul(out, Tensor(g))).backward()
        np.testing.assert_allclose(x.grad, g[seg])

    def test_segment_mean_handles_empty_segment(self):
        x = Tensor(np.ones((2, 3)))
        out = ops.segment_mean(x, np.array([0, 0]), 2)
        np.testing.assert_allclose(out.data[0], np.ones(3))
        np.testing.assert_allclose(out.data[1], np.zeros(3))

    def test_segment_softmax_normalizes_per_segment(self):
        scores = Tensor(RNG.normal(size=(6,)), requires_grad=True)
        seg = np.array([0, 0, 1, 1, 1, 2])
        out = ops.segment_softmax(scores, seg, 3)
        sums = np.zeros(3)
        np.add.at(sums, seg, out.data)
        np.testing.assert_allclose(sums, np.ones(3), atol=1e-12)

    def test_segment_softmax_grad_numeric(self):
        seg = np.array([0, 0, 1, 1, 1])
        x_data = RNG.normal(size=(5,))

        x = Tensor(x_data.copy(), requires_grad=True)
        out = ops.segment_softmax(x, seg, 2)
        ops.sum(ops.mul(out, out)).backward()

        def scalar_fn(arr):
            return float((ops.segment_softmax(Tensor(arr), seg, 2).data ** 2).sum())

        expected = numeric_grad(scalar_fn, x_data.copy())
        np.testing.assert_allclose(x.grad, expected, rtol=1e-5, atol=1e-6)


class TestGraphMechanics:
    def test_no_grad_blocks_recording(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = ops.mul(x, x)
        assert not out.requires_grad

    def test_backward_on_non_scalar_requires_grad_arg(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        out = ops.mul(x, x)
        with pytest.raises(RuntimeError):
            out.backward()
        out.backward(np.ones((2, 2)))
        np.testing.assert_allclose(x.grad, 2 * np.ones((2, 2)))

    def test_grad_accumulates_across_backwards(self):
        x = Tensor(np.ones(2), requires_grad=True)
        ops.sum(x).backward()
        ops.sum(x).backward()
        np.testing.assert_allclose(x.grad, [2.0, 2.0])

    def test_detach_cuts_graph(self):
        x = Tensor(np.ones(2), requires_grad=True)
        y = ops.mul(x, x).detach()
        z = ops.sum(ops.mul(Tensor.ensure(y), Tensor(np.ones(2))))
        assert not z.requires_grad

    def test_diamond_graph_accumulates_once_per_path(self):
        # f(x) = sum(x*x + x*x) => grad = 4x
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        y = ops.mul(x, x)
        z = ops.add(y, y)
        ops.sum(z).backward()
        np.testing.assert_allclose(x.grad, 4 * x.data)

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(np.ones(1), requires_grad=True)
        out = x
        for _ in range(3000):
            out = ops.add(out, Tensor(0.0))
        ops.sum(out).backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_operator_sugar(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = (x * 3 + 1) / 2 - 0.5
        y.backward()
        np.testing.assert_allclose(y.data, [3.0])
        np.testing.assert_allclose(x.grad, [1.5])

    def test_pow_operator(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        (x**2).backward()
        np.testing.assert_allclose(x.grad, [6.0])
