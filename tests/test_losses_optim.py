"""Unit tests for losses and optimizers."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Parameter
from repro.tensor import Tensor, ops

RNG = np.random.default_rng(3)


class TestCrossEntropy:
    def test_matches_manual_computation(self):
        logits = RNG.normal(size=(6, 3))
        targets = RNG.integers(0, 3, size=6)
        loss = nn.cross_entropy(Tensor(logits), targets).item()
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        manual = -log_probs[np.arange(6), targets].mean()
        assert loss == pytest.approx(manual, rel=1e-10)

    def test_uniform_logits_give_log_c(self):
        loss = nn.cross_entropy(Tensor(np.zeros((4, 5))), np.zeros(4, dtype=int)).item()
        assert loss == pytest.approx(np.log(5), rel=1e-10)

    def test_mask_restricts_rows(self):
        logits = RNG.normal(size=(4, 2))
        targets = np.array([0, 1, 0, 1])
        mask = np.array([True, False, True, False])
        masked = nn.cross_entropy(Tensor(logits), targets, mask=mask).item()
        manual = nn.cross_entropy(Tensor(logits[mask]), targets[mask]).item()
        assert masked == pytest.approx(manual, rel=1e-10)

    def test_empty_mask_raises(self):
        with pytest.raises(ValueError):
            nn.cross_entropy(Tensor(np.zeros((2, 2))), np.zeros(2, dtype=int),
                             mask=np.zeros(2, dtype=bool))

    def test_class_weights_scale_loss(self):
        logits = Tensor(np.zeros((2, 2)))
        targets = np.array([0, 1])
        weighted = nn.cross_entropy(logits, targets, class_weights=np.array([2.0, 0.0]))
        assert weighted.item() == pytest.approx(np.log(2), rel=1e-10)

    def test_invalid_labels_raise(self):
        with pytest.raises(ValueError):
            nn.cross_entropy(Tensor(np.zeros((2, 2))), np.array([0, 2]))

    def test_gradient_is_softmax_minus_onehot(self):
        logits = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        targets = np.array([1, 0, 3])
        nn.cross_entropy(logits, targets).backward()
        shifted = logits.data - logits.data.max(axis=1, keepdims=True)
        probs = np.exp(shifted) / np.exp(shifted).sum(axis=1, keepdims=True)
        onehot = np.zeros((3, 4))
        onehot[np.arange(3), targets] = 1.0
        np.testing.assert_allclose(logits.grad, (probs - onehot) / 3, atol=1e-10)


class TestBCE:
    def test_matches_reference(self):
        logits = RNG.normal(size=10)
        targets = RNG.integers(0, 2, size=10).astype(float)
        loss = nn.binary_cross_entropy_with_logits(Tensor(logits), targets).item()
        probs = 1 / (1 + np.exp(-logits))
        manual = -(targets * np.log(probs) + (1 - targets) * np.log(1 - probs)).mean()
        assert loss == pytest.approx(manual, rel=1e-8)

    def test_stable_at_extreme_logits(self):
        logits = Tensor(np.array([1000.0, -1000.0]), requires_grad=True)
        loss = nn.binary_cross_entropy_with_logits(logits, np.array([1.0, 0.0]))
        assert np.isfinite(loss.item())
        loss.backward()
        assert np.all(np.isfinite(logits.grad))

    def test_pos_weight_upweights_positives(self):
        logits = Tensor(np.zeros(2))
        targets = np.array([1.0, 0.0])
        base = nn.binary_cross_entropy_with_logits(logits, targets).item()
        up = nn.binary_cross_entropy_with_logits(logits, targets, pos_weight=3.0).item()
        assert up == pytest.approx(base * 2.0, rel=1e-10)  # (3+1)/2 over (1+1)/2


class TestRegressionLosses:
    def test_mse(self):
        pred = Tensor(np.array([1.0, 2.0]))
        assert nn.mse_loss(pred, np.array([0.0, 0.0])).item() == pytest.approx(2.5)

    def test_mae(self):
        pred = Tensor(np.array([1.0, -3.0]))
        assert nn.mae_loss(pred, np.array([0.0, 0.0])).item() == pytest.approx(2.0)

    def test_huber_quadratic_then_linear(self):
        pred = Tensor(np.array([0.5, 3.0]))
        loss = nn.huber_loss(pred, np.array([0.0, 0.0]), delta=1.0).item()
        assert loss == pytest.approx((0.5 * 0.25 + (3.0 - 0.5)) / 2)

    def test_2d_predictions_average_over_features(self):
        pred = Tensor(np.ones((2, 3)))
        assert nn.mse_loss(pred, np.zeros((2, 3))).item() == pytest.approx(1.0)


class TestNTXent:
    def test_identical_views_have_low_loss(self):
        z = RNG.normal(size=(16, 8))
        same = nn.nt_xent_loss(Tensor(z), Tensor(z), temperature=0.1).item()
        other = nn.nt_xent_loss(
            Tensor(z), Tensor(RNG.normal(size=(16, 8))), temperature=0.1
        ).item()
        assert same < other

    def test_mismatched_sizes_raise(self):
        with pytest.raises(ValueError):
            nn.nt_xent_loss(Tensor(np.ones((4, 2))), Tensor(np.ones((5, 2))))

    def test_gradient_flows(self):
        z1 = Tensor(RNG.normal(size=(6, 4)), requires_grad=True)
        z2 = Tensor(RNG.normal(size=(6, 4)), requires_grad=True)
        nn.nt_xent_loss(z1, z2).backward()
        assert z1.grad is not None and z2.grad is not None


def quadratic_problem():
    """min ||w - target||^2, a 1-parameter sanity problem."""
    target = np.array([3.0, -2.0, 0.5])
    w = Parameter(np.zeros(3))

    def loss_fn():
        diff = ops.sub(w, Tensor(target))
        return ops.sum(ops.mul(diff, diff))

    return w, target, loss_fn


class TestOptimizers:
    def test_sgd_converges_on_quadratic(self):
        w, target, loss_fn = quadratic_problem()
        opt = nn.SGD([w], lr=0.1)
        for _ in range(200):
            loss = loss_fn()
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(w.data, target, atol=1e-4)

    def test_sgd_momentum_faster_than_plain(self):
        losses = {}
        for momentum in (0.0, 0.9):
            w, _, loss_fn = quadratic_problem()
            opt = nn.SGD([w], lr=0.01, momentum=momentum)
            for _ in range(50):
                loss = loss_fn()
                opt.zero_grad()
                loss.backward()
                opt.step()
            losses[momentum] = loss_fn().item()
        assert losses[0.9] < losses[0.0]

    def test_weight_decay_shrinks_solution(self):
        w, target, loss_fn = quadratic_problem()
        opt = nn.SGD([w], lr=0.1, weight_decay=1.0)
        for _ in range(300):
            loss = loss_fn()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert np.all(np.abs(w.data) < np.abs(target))

    def test_adam_converges(self):
        w, target, loss_fn = quadratic_problem()
        opt = nn.Adam([w], lr=0.1)
        for _ in range(300):
            loss = loss_fn()
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(w.data, target, atol=1e-3)

    def test_adamw_decay_is_decoupled(self):
        # With zero gradient, AdamW still shrinks weights; Adam with
        # weight_decay folds decay into the (normalized) gradient.
        w = Parameter(np.array([1.0]))
        opt = nn.AdamW([w], lr=0.1, weight_decay=0.5)
        w.grad = np.zeros(1)
        opt.step()
        assert w.data[0] == pytest.approx(0.95)

    def test_empty_params_raise(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)

    def test_invalid_lr_raises(self):
        w = Parameter(np.zeros(1))
        with pytest.raises(ValueError):
            nn.Adam([w], lr=0.0)

    def test_clip_grad_norm(self):
        w = Parameter(np.zeros(4))
        w.grad = np.full(4, 10.0)
        opt = nn.SGD([w], lr=0.1)
        norm = opt.clip_grad_norm(1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(w.grad) == pytest.approx(1.0)


class TestSchedulers:
    def test_step_lr_halves(self):
        w = Parameter(np.zeros(1))
        opt = nn.SGD([w], lr=1.0)
        sched = nn.StepLR(opt, step_size=2, gamma=0.5)
        lrs = []
        for _ in range(4):
            sched.step()
            lrs.append(opt.lr)
        assert lrs == [1.0, 0.5, 0.5, 0.25]

    def test_cosine_reaches_eta_min(self):
        w = Parameter(np.zeros(1))
        opt = nn.SGD([w], lr=1.0)
        sched = nn.CosineAnnealingLR(opt, t_max=10, eta_min=0.1)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.1)
