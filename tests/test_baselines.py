"""Unit tests for the structure-blind baselines and imputers."""

import numpy as np
import pytest

from repro.baselines import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    GradientBoostingClassifier,
    IterativeImputer,
    KNNClassifier,
    KNNImputer,
    LogisticRegressionClassifier,
    MeanImputer,
    MedianImputer,
    MLPClassifier,
    MLPRegressor,
    RandomForestClassifier,
    RidgeRegression,
)
from repro.datasets import make_classification, make_feature_interaction
from repro.metrics import accuracy

RNG = np.random.default_rng(51)


def separable_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 4))
    y = (x[:, 0] + x[:, 1] > 0).astype(np.int64)
    return x, y


def xor_data(n=400, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 2))
    y = ((x[:, 0] * x[:, 1]) > 0).astype(np.int64)
    return x, y


class TestLogistic:
    def test_fits_separable(self):
        x, y = separable_data()
        clf = LogisticRegressionClassifier().fit(x, y)
        assert accuracy(y, clf.predict(x)) > 0.9

    def test_probabilities_sum_to_one(self):
        x, y = separable_data()
        probs = LogisticRegressionClassifier().fit(x, y).predict_proba(x)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-10)

    def test_cannot_fit_xor(self):
        x, y = xor_data()
        clf = LogisticRegressionClassifier().fit(x, y)
        assert accuracy(y, clf.predict(x)) < 0.65

    def test_multiclass(self):
        ds = make_classification(n=200, num_classes=3, class_sep=2.0, seed=0)
        clf = LogisticRegressionClassifier().fit(ds.numerical, ds.y)
        assert accuracy(ds.y, clf.predict(ds.numerical)) > 0.7

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            LogisticRegressionClassifier().predict(np.ones((2, 2)))


class TestRidge:
    def test_recovers_coefficients(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(300, 3))
        coef = np.array([2.0, -1.0, 0.5])
        y = x @ coef + 3.0
        model = RidgeRegression(alpha=1e-6).fit(x, y)
        np.testing.assert_allclose(model.coef_, coef, atol=1e-2)
        assert model.intercept_ == pytest.approx(3.0, abs=1e-2)

    def test_alpha_shrinks(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(50, 2))
        y = x[:, 0] * 5
        small = RidgeRegression(alpha=1e-6).fit(x, y)
        large = RidgeRegression(alpha=1e3).fit(x, y)
        assert abs(large.coef_[0]) < abs(small.coef_[0])

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            RidgeRegression(alpha=-1.0)


class TestMLPBaselines:
    def test_classifier_fits_xor(self):
        x, y = xor_data()
        clf = MLPClassifier(hidden_dims=(32,), epochs=300, seed=0).fit(x, y)
        assert accuracy(y, clf.predict(x)) > 0.85

    def test_regressor_fits_linear(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 3))
        y = x @ np.array([1.0, -2.0, 0.5])
        model = MLPRegressor(hidden_dims=(16,), epochs=300, seed=0).fit(x, y)
        pred = model.predict(x)
        assert np.corrcoef(pred, y)[0, 1] > 0.95

    def test_classifier_label_mapping(self):
        x, y = separable_data()
        shifted = y + 5  # labels {5, 6}
        clf = MLPClassifier(epochs=100, seed=0).fit(x, shifted)
        assert set(np.unique(clf.predict(x))) <= {5, 6}


class TestKNNClassifier:
    def test_fits_local_structure(self):
        x, y = xor_data(300)
        clf = KNNClassifier(k=7).fit(x, y)
        assert accuracy(y, clf.predict(x)) > 0.85

    def test_k_larger_than_train_raises(self):
        with pytest.raises(ValueError):
            KNNClassifier(k=10).fit(np.ones((5, 2)), np.zeros(5, dtype=int))

    def test_weighted_voting(self):
        x, y = separable_data()
        clf = KNNClassifier(k=5, weighted=True).fit(x, y)
        assert accuracy(y, clf.predict(x)) > 0.85


class TestTrees:
    def test_tree_fits_xor(self):
        x, y = xor_data()
        tree = DecisionTreeClassifier(max_depth=4).fit(x, y)
        assert accuracy(y, tree.predict(x)) > 0.9

    def test_max_depth_respected(self):
        x, y = xor_data()
        tree = DecisionTreeClassifier(max_depth=2).fit(x, y)
        assert tree.depth() <= 2

    def test_pure_leaf_stops(self):
        x = np.array([[0.0], [1.0]])
        y = np.array([0, 0])
        tree = DecisionTreeClassifier().fit(x, y)
        assert tree.root_.is_leaf

    def test_proba_rows_sum_to_one(self):
        x, y = xor_data(100)
        probs = DecisionTreeClassifier(max_depth=3).fit(x, y).predict_proba(x)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_regressor_fits_step_function(self):
        x = np.linspace(0, 1, 100).reshape(-1, 1)
        y = (x[:, 0] > 0.5).astype(float) * 10
        tree = DecisionTreeRegressor(max_depth=2).fit(x, y)
        pred = tree.predict(x)
        assert np.abs(pred - y).max() < 1.0

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=0)


class TestEnsembles:
    def test_forest_beats_stump_on_interactions(self):
        ds = make_feature_interaction(n=500, seed=0)
        x, y = ds.numerical, ds.y
        stump = DecisionTreeClassifier(max_depth=1).fit(x, y)
        forest = RandomForestClassifier(num_trees=15, max_depth=6, seed=0).fit(x, y)
        assert accuracy(y, forest.predict(x)) > accuracy(y, stump.predict(x))

    def test_gbdt_fits_xor(self):
        x, y = xor_data(300)
        gbdt = GradientBoostingClassifier(num_rounds=25, max_depth=3, seed=0).fit(x, y)
        assert accuracy(y, gbdt.predict(x)) > 0.9

    def test_gbdt_multiclass(self):
        ds = make_classification(n=200, num_classes=3, class_sep=2.0, seed=0)
        gbdt = GradientBoostingClassifier(num_rounds=15, seed=0).fit(ds.numerical, ds.y)
        assert accuracy(ds.y, gbdt.predict(ds.numerical)) > 0.8

    def test_gbdt_proba_normalized(self):
        x, y = separable_data(100)
        probs = GradientBoostingClassifier(num_rounds=5, seed=0).fit(x, y).predict_proba(x)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-10)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(num_trees=0)
        with pytest.raises(ValueError):
            GradientBoostingClassifier(subsample=0.0)


class TestImputers:
    def table_with_missing(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(60, 4))
        x[:, 1] = x[:, 0] * 2 + 0.01 * rng.normal(size=60)  # strong correlation
        missing = x.copy()
        missing[rng.random((60, 4)) < 0.2] = np.nan
        return x, missing

    def test_mean_imputer_exact(self):
        x = np.array([[1.0, np.nan], [3.0, 4.0], [np.nan, 8.0]])
        filled = MeanImputer().fit_transform(x)
        assert filled[0, 1] == pytest.approx(6.0)
        assert filled[2, 0] == pytest.approx(2.0)

    def test_median_imputer_exact(self):
        x = np.array([[1.0], [np.nan], [100.0], [3.0]])
        assert MedianImputer().fit_transform(x)[1, 0] == pytest.approx(3.0)

    def test_all_nan_column_falls_back_to_zero(self):
        x = np.array([[np.nan], [np.nan]])
        np.testing.assert_allclose(MeanImputer().fit_transform(x), 0.0)

    def test_knn_imputer_no_nan_left(self):
        _, missing = self.table_with_missing()
        filled = KNNImputer(k=3).fit_transform(missing)
        assert not np.isnan(filled).any()

    def test_iterative_beats_mean_on_correlated(self):
        truth, missing = self.table_with_missing()
        mask = np.isnan(missing)
        mean_err = np.abs(MeanImputer().fit_transform(missing)[mask] - truth[mask]).mean()
        iter_err = np.abs(IterativeImputer().fit_transform(missing)[mask] - truth[mask]).mean()
        assert iter_err < mean_err

    def test_iterative_complete_table_unchanged(self):
        x = RNG.normal(size=(10, 3))
        np.testing.assert_allclose(IterativeImputer().fit_transform(x), x)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KNNImputer(k=0)

    def test_transform_before_fit(self):
        with pytest.raises(RuntimeError):
            MeanImputer().transform(np.ones((2, 2)))
        with pytest.raises(RuntimeError):
            KNNImputer().transform(np.ones((2, 2)))
