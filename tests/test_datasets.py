"""Unit tests for the dataset container, generators, preprocessing, missingness."""

import numpy as np
import pytest

from repro.datasets import (
    KBinsDiscretizer,
    MinMaxScaler,
    OneHotEncoder,
    OrdinalEncoder,
    StandardScaler,
    TabularDataset,
    inject_missing,
    make_anomaly,
    make_classification,
    make_correlated_instances,
    make_ctr,
    make_ehr,
    make_feature_interaction,
    make_fraud,
    make_regression,
    train_val_test_masks,
)
from repro.datasets.missing import missing_rate

RNG = np.random.default_rng(9)


class TestTabularDataset:
    def make(self):
        return TabularDataset(
            RNG.normal(size=(10, 3)),
            RNG.integers(0, 4, size=(10, 2)),
            RNG.integers(0, 2, size=10),
            "binary",
        )

    def test_counts(self):
        ds = self.make()
        assert ds.num_instances == 10
        assert ds.num_numerical == 3
        assert ds.num_categorical == 2
        assert ds.num_features == 5
        assert ds.num_classes == 2

    def test_invalid_task_rejected(self):
        with pytest.raises(ValueError):
            TabularDataset(np.zeros((2, 1)), None, np.zeros(2), "clustering")

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            TabularDataset(np.zeros((2, 1)), None, np.zeros(3), "binary")
        with pytest.raises(ValueError):
            TabularDataset(np.zeros(3), None, np.zeros(3), "binary")

    def test_cardinality_validation(self):
        with pytest.raises(ValueError):
            TabularDataset(
                np.zeros((2, 0)), np.array([[3], [0]]), np.zeros(2), "binary",
                cardinalities=[2],
            )

    def test_to_matrix_onehot_width(self):
        ds = self.make()
        mat = ds.to_matrix()
        assert mat.shape == (10, 3 + sum(ds.cardinalities))

    def test_to_matrix_handles_missing(self):
        num = np.array([[1.0, np.nan], [3.0, 4.0]])
        cat = np.array([[0], [-1]])
        ds = TabularDataset(num, cat, np.zeros(2), "binary", cardinalities=[2])
        mat = ds.to_matrix()
        assert np.isfinite(mat).all()
        assert mat[1, 2:].sum() == 0  # missing categorical -> zero one-hot row

    def test_global_value_ids_offsets(self):
        cat = np.array([[0, 0], [1, 1]])
        ds = TabularDataset(np.zeros((2, 0)), cat, np.zeros(2), "binary",
                            cardinalities=[2, 3])
        ids = ds.global_value_ids()
        np.testing.assert_array_equal(ids, [[0, 2], [1, 3]])
        assert ds.num_category_values == 5

    def test_subset(self):
        ds = self.make()
        sub = ds.subset(np.array([0, 2, 4]))
        assert sub.num_instances == 3
        assert sub.cardinalities == ds.cardinalities

    def test_regression_has_no_classes(self):
        ds = TabularDataset(np.zeros((3, 1)), None, np.arange(3.0), "regression")
        with pytest.raises(ValueError):
            _ = ds.num_classes

    def test_summary(self):
        info = self.make().summary()
        assert info["task"] == "binary"
        assert "class_balance" in info


class TestGenerators:
    def test_determinism(self):
        a = make_correlated_instances(n=50, seed=3)
        b = make_correlated_instances(n=50, seed=3)
        np.testing.assert_array_equal(a.numerical, b.numerical)
        np.testing.assert_array_equal(a.y, b.y)

    def test_make_classification_shapes(self):
        ds = make_classification(n=100, num_features=8, num_classes=3, seed=0)
        assert ds.task == "multiclass"
        assert ds.numerical.shape == (100, 8)
        assert set(np.unique(ds.y)) <= {0, 1, 2}

    def test_make_classification_informative_bound(self):
        with pytest.raises(ValueError):
            make_classification(num_features=4, num_informative=6)

    def test_make_regression(self):
        ds = make_regression(n=60, seed=0)
        assert ds.task == "regression"
        assert ds.y.dtype == np.float64

    def test_correlated_strength_zero_is_noise(self):
        ds = make_correlated_instances(n=100, cluster_strength=0.0, seed=0)
        # Features should be uninformative: class means near zero everywhere.
        for c in np.unique(ds.y):
            assert np.abs(ds.numerical[ds.y == c].mean(axis=0)).max() < 0.5

    def test_feature_interaction_marginally_uninformative(self):
        ds = make_feature_interaction(n=3000, num_pairs=1, noise_features=0, seed=0)
        x, y = ds.numerical, ds.y
        # single-feature correlation with label is ~0, product is informative
        marginal = abs(np.corrcoef(x[:, 0], y)[0, 1])
        product = abs(np.corrcoef(x[:, 0] * x[:, 1], y)[0, 1])
        assert marginal < 0.08
        assert product > 0.5

    def test_make_ctr_fields(self):
        ds = make_ctr(n=100, num_users=5, num_items=4, seed=0)
        assert ds.cardinalities == [5, 4, 8]
        assert ds.num_numerical == 0
        assert ds.task == "binary"

    def test_make_ehr_multihot(self):
        ds = make_ehr(n=50, num_codes=20, seed=0)
        assert ds.numerical.shape == (50, 20)
        assert set(np.unique(ds.numerical)) <= {0.0, 1.0}
        # primary code is among the patient's codes
        for i in range(50):
            assert ds.numerical[i, ds.categorical[i, 0]] == 1.0

    def test_make_anomaly_labels(self):
        ds = make_anomaly(n_inliers=90, n_outliers=10, seed=0)
        assert int(ds.y.sum()) == 10
        assert ds.num_instances == 100

    def test_make_anomaly_local_fraction_validated(self):
        with pytest.raises(ValueError):
            make_anomaly(local_fraction=1.5)

    def test_make_fraud_rate(self):
        ds = make_fraud(n=400, fraud_rate=0.1, seed=0)
        assert 0.05 < ds.y.mean() < 0.16
        assert ds.categorical_names == ["device", "merchant"]


class TestMissingInjection:
    def complete(self):
        return make_correlated_instances(n=200, seed=0)

    def test_mcar_rate(self):
        ds = inject_missing(self.complete(), 0.3, "mcar", np.random.default_rng(0))
        assert 0.25 < missing_rate(ds) < 0.35

    def test_mar_depends_on_pilot_column(self):
        ds = self.complete()
        missing = inject_missing(ds, 0.3, "mar", np.random.default_rng(0))
        j = 0
        pilot = ds.numerical[:, 1]  # pilot of column 0 is column 1
        miss = np.isnan(missing.numerical[:, j])
        assert pilot[miss].mean() > pilot[~miss].mean()

    def test_mnar_hides_large_values(self):
        ds = self.complete()
        missing = inject_missing(ds, 0.3, "mnar", np.random.default_rng(0))
        for j in range(3):
            col = ds.numerical[:, j]
            miss = np.isnan(missing.numerical[:, j])
            assert col[miss].mean() > col[~miss].mean()

    def test_no_row_fully_missing(self):
        ds = inject_missing(self.complete(), 0.85, "mcar", np.random.default_rng(0))
        assert not np.isnan(ds.numerical).all(axis=1).any()

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            inject_missing(self.complete(), 1.5)
        with pytest.raises(ValueError):
            inject_missing(self.complete(), 0.2, "typo")

    def test_zero_rate_is_identity(self):
        ds = self.complete()
        out = inject_missing(ds, 0.0)
        np.testing.assert_array_equal(out.numerical, ds.numerical)


class TestPreprocessing:
    def test_standard_scaler_roundtrip(self):
        x = RNG.normal(3.0, 2.0, size=(50, 4))
        scaler = StandardScaler()
        z = scaler.fit_transform(x)
        np.testing.assert_allclose(z.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(scaler.inverse_transform(z), x, atol=1e-10)

    def test_standard_scaler_ignores_nan(self):
        x = np.array([[1.0, np.nan], [3.0, 4.0], [5.0, 6.0]])
        z = StandardScaler().fit_transform(x)
        assert np.isfinite(z[:, 0]).all()
        assert np.isnan(z[0, 1])

    def test_standard_scaler_constant_column(self):
        z = StandardScaler().fit_transform(np.ones((5, 1)))
        np.testing.assert_allclose(z, 0.0)

    def test_minmax_scaler_range(self):
        z = MinMaxScaler().fit_transform(RNG.normal(size=(30, 3)))
        assert z.min() >= 0.0 and z.max() <= 1.0

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.ones((2, 2)))

    def test_onehot_encoder(self):
        codes = np.array([[0, 2], [1, -1]])
        out = OneHotEncoder().fit_transform(codes)
        assert out.shape == (2, 2 + 3)
        np.testing.assert_array_equal(out[0], [1, 0, 0, 0, 1])
        np.testing.assert_array_equal(out[1, 2:], [0, 0, 0])  # missing row

    def test_ordinal_encoder_roundtrip(self):
        cols = np.array([["a", "x"], ["b", "y"], ["a", "x"]], dtype=object)
        enc = OrdinalEncoder()
        codes = enc.fit_transform(cols)
        assert codes[0, 0] == codes[2, 0]
        assert codes[0, 1] == codes[2, 1]
        unseen = enc.transform(np.array([["c", "x"]], dtype=object))
        assert unseen[0, 0] == -1

    def test_discretizer_bins(self):
        x = np.linspace(0, 1, 100).reshape(-1, 1)
        bins = KBinsDiscretizer(4).fit_transform(x)
        assert set(np.unique(bins)) == {0, 1, 2, 3}
        counts = np.bincount(bins[:, 0])
        assert counts.max() - counts.min() <= 2  # roughly equal-frequency

    def test_discretizer_nan_to_missing(self):
        x = np.array([[0.1], [np.nan], [0.9]])
        bins = KBinsDiscretizer(2).fit_transform(x)
        assert bins[1, 0] == -1

    def test_discretizer_min_bins(self):
        with pytest.raises(ValueError):
            KBinsDiscretizer(1)


class TestSplits:
    def test_partition_covers_everything(self):
        train, val, test = train_val_test_masks(100, 0.6, 0.2, np.random.default_rng(0))
        total = train.astype(int) + val.astype(int) + test.astype(int)
        np.testing.assert_array_equal(total, 1)
        assert 55 <= train.sum() <= 65

    def test_stratified_preserves_ratios(self):
        y = np.array([0] * 80 + [1] * 20)
        train, _, test = train_val_test_masks(
            100, 0.5, 0.25, np.random.default_rng(0), stratify=y
        )
        assert y[train].mean() == pytest.approx(0.2, abs=0.05)
        assert y[test].mean() == pytest.approx(0.2, abs=0.08)

    def test_invalid_fractions(self):
        with pytest.raises(ValueError):
            train_val_test_masks(10, 0.8, 0.3)
        with pytest.raises(ValueError):
            train_val_test_masks(10, 0.0, 0.2)
