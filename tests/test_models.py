"""Unit tests for the specialized GNN4TDL models."""

import numpy as np
import pytest

from repro import nn
from repro.construction.intrinsic import multiplex_from_dataset
from repro.datasets import (
    make_anomaly,
    make_correlated_instances,
    make_ctr,
    make_fraud,
)
from repro.graph.bipartite import BipartiteGraph
from repro.metrics import accuracy, roc_auc
from repro.models import (
    FATE,
    GRAPE,
    IDGL,
    LUNAR,
    SLAPS,
    FeatureGraphClassifier,
    FiGNN,
    HeteroTabClassifier,
    HypergraphClassifier,
    KNNGraphClassifier,
    TabGNN,
)
from repro.tensor import Tensor

RNG = np.random.default_rng(23)


def rng():
    return np.random.default_rng(31)


class TestTabGNN:
    def build(self, fusion="attention"):
        ds = make_fraud(n=60, seed=0)
        graph = multiplex_from_dataset(ds)
        return ds, TabGNN(graph, 16, 2, rng(), fusion=fusion)

    def test_forward_shape(self):
        _, model = self.build()
        assert model().shape == (60, 2)

    def test_relation_attention_rows_sum_to_one(self):
        _, model = self.build()
        alpha = model.relation_attention(model.relation_embeddings())
        np.testing.assert_allclose(alpha.data.sum(axis=1), 1.0, atol=1e-10)

    def test_mean_fusion_variant(self):
        _, model = self.build(fusion="mean")
        assert model().shape == (60, 2)

    def test_invalid_fusion(self):
        ds = make_fraud(n=30, seed=0)
        graph = multiplex_from_dataset(ds)
        with pytest.raises(ValueError):
            TabGNN(graph, 8, 2, rng(), fusion="concat")

    def test_trains(self):
        ds, model = self.build()
        opt = nn.Adam(model.parameters(), lr=0.02)
        losses = []
        for _ in range(15):
            loss = nn.cross_entropy(model(), ds.y)
            losses.append(loss.item())
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert losses[-1] < losses[0]


class TestGRAPE:
    def build(self, instance_init="ones"):
        table = RNG.normal(size=(20, 5))
        table[RNG.random((20, 5)) < 0.2] = np.nan
        graph = BipartiteGraph.from_table(table, y=RNG.integers(0, 2, 20))
        return graph, GRAPE(graph, 16, 2, rng(), instance_init=instance_init)

    def test_forward_and_embed_shapes(self):
        _, model = self.build()
        assert model().shape == (20, 2)
        assert model.embed().shape == (20, 16)

    def test_feature_init_variant(self):
        _, model = self.build(instance_init="features")
        assert model().shape == (20, 2)

    def test_invalid_init_rejected(self):
        graph, _ = self.build()
        with pytest.raises(ValueError):
            GRAPE(graph, 8, 2, rng(), instance_init="zeros")

    def test_edge_prediction_shape(self):
        graph, model = self.build()
        pred = model.predict_edges(np.array([0, 1]), np.array([2, 3]))
        assert pred.shape == (2,)

    def test_impute_table_fills_all_nans(self):
        graph, model = self.build()
        table = model.impute_table()
        assert not np.isnan(table).any()
        observed = graph.observed_mask()
        np.testing.assert_allclose(table[observed], graph.observed_matrix()[observed])

    def test_imputation_loss_uses_hidden_edges_only(self):
        graph, model = self.build()
        loss = model.imputation_loss(drop_rate=0.3, rng=np.random.default_rng(0))
        assert loss.item() >= 0
        with pytest.raises(ValueError):
            model.imputation_loss(drop_rate=0.0)

    def test_imputation_trains(self):
        graph, model = self.build(instance_init="features")
        opt = nn.Adam(model.parameters(), lr=0.01)
        loss_rng = np.random.default_rng(0)
        losses = []
        for _ in range(40):
            loss = model.imputation_loss(rng=loss_rng)
            losses.append(loss.item())
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert np.mean(losses[-10:]) < np.mean(losses[:10])


class TestFiGNN:
    def test_forward_shape_binary(self):
        ds = make_ctr(n=50, num_users=5, num_items=4, seed=0)
        model = FiGNN(ds.cardinalities, 8, rng())
        assert model(ds).shape == (50,)

    def test_predict_proba_in_unit_interval(self):
        ds = make_ctr(n=30, num_users=5, num_items=4, seed=0)
        model = FiGNN(ds.cardinalities, 8, rng())
        probs = model.predict_proba(ds)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_interaction_matrix_rows_sum_to_one(self):
        model = FiGNN([5, 4, 3], 8, rng())
        adj = model.interaction_matrix().data
        np.testing.assert_allclose(adj.sum(axis=1), 1.0, atol=1e-10)
        np.testing.assert_allclose(np.diag(adj), 0.0, atol=1e-10)

    def test_numerical_fields_supported(self):
        ds = make_fraud(n=40, seed=0)
        model = FiGNN(ds.cardinalities, 8, rng(), num_numerical=ds.num_numerical)
        assert model(ds).shape == (40,)

    def test_needs_at_least_one_field(self):
        with pytest.raises(ValueError):
            FiGNN([], 8, rng())

    def test_learns_interaction_signal(self):
        ds = make_ctr(n=800, num_users=8, num_items=6, seed=1)
        model = FiGNN(ds.cardinalities, 16, rng())
        opt = nn.Adam(model.parameters(), lr=0.02)
        for _ in range(60):
            loss = nn.binary_cross_entropy_with_logits(model(ds), ds.y)
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert roc_auc(ds.y, model.predict_proba(ds)) > 0.75


class TestLUNAR:
    def test_scores_rank_planted_outliers(self):
        ds = make_anomaly(n_inliers=150, n_outliers=15, seed=0)
        x = ds.to_matrix()
        model = LUNAR(k=8, seed=0, epochs=60).fit(x)
        assert roc_auc(ds.y, model.score()) > 0.8

    def test_score_new_points(self):
        ds = make_anomaly(n_inliers=100, n_outliers=10, seed=0)
        x = ds.to_matrix()
        model = LUNAR(k=5, seed=0, epochs=30).fit(x)
        new_scores = model.score(RNG.normal(size=(7, x.shape[1])))
        assert new_scores.shape == (7,)
        assert np.all((new_scores >= 0) & (new_scores <= 1))

    def test_score_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LUNAR(k=3).score()

    def test_needs_enough_rows(self):
        with pytest.raises(ValueError):
            LUNAR(k=10).fit(np.ones((5, 2)))

    def test_baseline_score_is_mean_distance(self):
        x = RNG.normal(size=(30, 3))
        model = LUNAR(k=4, seed=0, epochs=1).fit(x)
        baseline = model.baseline_knn_score()
        assert baseline.shape == (30,)
        assert np.all(baseline > 0)


class TestSLAPS:
    def build(self):
        ds = make_correlated_instances(n=60, cluster_strength=2.0, seed=0)
        return ds, SLAPS(ds.to_matrix(), ds.num_classes, rng(), hidden_dim=16, k=8)

    def test_forward_shape(self):
        ds, model = self.build()
        assert model().shape == (60, ds.num_classes)

    def test_dae_loss_positive_and_differentiable(self):
        _, model = self.build()
        loss = model.dae_loss()
        assert loss.item() > 0
        loss.backward()
        assert any(p.grad is not None for p in model.learner.parameters())

    def test_joint_loss_includes_dae(self):
        ds, model = self.build()
        supervised_only = SLAPS(ds.to_matrix(), ds.num_classes, rng(),
                                hidden_dim=16, k=8, dae_weight=0.0)
        assert model.loss(ds.y).item() > supervised_only.loss(ds.y).item() * 0.5

    def test_invalid_k(self):
        ds = make_correlated_instances(n=20, seed=0)
        with pytest.raises(ValueError):
            SLAPS(ds.to_matrix(), 2, rng(), k=30)


class TestIDGL:
    def test_forward_and_loss(self):
        ds = make_correlated_instances(n=50, cluster_strength=2.0, seed=0)
        model = IDGL(ds.to_matrix(), ds.num_classes, rng(), hidden_dim=12, k=10)
        logits = model()
        assert logits.shape == (50, ds.num_classes)
        loss = model.loss(ds.y)
        loss.backward()
        assert model.feature_learner.head_weights.grad is not None

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            IDGL(np.ones((10, 3)), 2, rng(), num_iterations=0)


class TestFATE:
    def test_permutation_invariance_over_features(self):
        model = FATE(6, 2, rng())
        x = RNG.normal(size=(9, 6))
        perm = RNG.permutation(6)
        out1 = model(x, feature_index=np.arange(6)).data
        out2 = model(x[:, perm], feature_index=perm).data
        np.testing.assert_allclose(out1, out2, atol=1e-10)

    def test_unseen_features_use_mean_embedding(self):
        model = FATE(4, 2, rng())
        x = RNG.normal(size=(5, 6))
        out = model(x, feature_index=np.array([0, 1, 2, 3, 4, 5]))
        assert out.shape == (5, 2)
        assert np.all(np.isfinite(out.data))

    def test_column_count_checked(self):
        model = FATE(4, 2, rng())
        with pytest.raises(ValueError):
            model(RNG.normal(size=(3, 5)))
        with pytest.raises(ValueError):
            model(RNG.normal(size=(3, 5)), feature_index=np.arange(4))


class TestFeatureGraphClassifier:
    def test_forward_shape(self):
        model = FeatureGraphClassifier(6, 3, rng(), embed_dim=8)
        assert model(RNG.normal(size=(10, 6))).shape == (10, 3)

    def test_interaction_graph_normalized(self):
        model = FeatureGraphClassifier(5, 2, rng())
        adj = model.interaction_graph().data
        np.testing.assert_allclose(adj.sum(axis=1), 1.0, atol=1e-10)
        np.testing.assert_allclose(np.diag(adj), 0.0, atol=1e-10)

    def test_needs_two_features(self):
        with pytest.raises(ValueError):
            FeatureGraphClassifier(1, 2, rng())

    def test_wrong_width_raises(self):
        model = FeatureGraphClassifier(4, 2, rng())
        with pytest.raises(ValueError):
            model(RNG.normal(size=(3, 5)))


class TestWrapperModels:
    def test_hypergraph_classifier(self):
        ds = make_fraud(n=40, seed=0)
        model = HypergraphClassifier(ds, rng(), hidden_dim=8)
        assert model().shape == (40, 2)
        assert model.loss(ds.y).item() > 0

    def test_hetero_classifier(self):
        ds = make_fraud(n=40, seed=0)
        model = HeteroTabClassifier(ds, rng(), hidden_dim=8)
        assert model().shape == (40, 2)

    def test_knn_graph_classifier_fit_predict(self):
        ds = make_correlated_instances(n=120, cluster_strength=2.5, seed=0)
        clf = KNNGraphClassifier(k=6, max_epochs=60, seed=0)
        clf.fit(ds.to_matrix(), ds.y)
        preds = clf.predict()
        assert preds.shape == (120,)
        assert accuracy(ds.y, preds) > 0.6

    def test_knn_classifier_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            KNNGraphClassifier().predict()


class TestPET:
    def setup_problem(self, use_label_channel=True, seed=1):
        from repro.models import PET

        ds = make_correlated_instances(n=150, cluster_strength=1.0, seed=seed)
        x = ds.to_matrix()
        rng_split = np.random.default_rng(0)
        from repro.datasets import train_val_test_masks

        train, val, test = train_val_test_masks(150, 0.3, 0.15, rng_split,
                                                stratify=ds.y)
        model = PET(x, ds.y, train, ds.num_classes, np.random.default_rng(0),
                    k=8, use_label_channel=use_label_channel)
        return ds, model, train, val, test

    def test_forward_shape(self):
        ds, model, *_ = self.setup_problem()
        assert model().shape == (150, ds.num_classes)

    def test_label_channel_extends_features(self):
        ds, with_labels, *_ = self.setup_problem(True)
        _, without, *_ = self.setup_problem(False)
        assert (with_labels.graph.x.shape[1]
                == without.graph.x.shape[1] + ds.num_classes)

    def test_test_rows_have_zero_label_channel(self):
        ds, model, train, *_ = self.setup_problem()
        channel = model.graph.x[:, -ds.num_classes:]
        assert np.all(channel[~train] == 0.0)
        assert np.all(channel[train].sum(axis=1) == 1.0)

    def test_label_dropout_changes_loss_stochastically(self):
        ds, model, train, *_ = self.setup_problem()
        rng = np.random.default_rng(5)
        l1 = model.loss(ds.y, train, label_dropout=0.8, rng=rng).item()
        l2 = model.loss(ds.y, train, label_dropout=0.8, rng=rng).item()
        assert l1 != l2

    def test_trains(self):
        ds, model, train, val, test = self.setup_problem()
        opt = nn.Adam(model.parameters(), lr=0.01)
        rng = np.random.default_rng(1)
        losses = []
        for _ in range(25):
            loss = model.loss(ds.y, train, rng=rng)
            losses.append(loss.item())
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert np.mean(losses[-5:]) < np.mean(losses[:5])
