"""Hypothesis property-based tests on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro import metrics, nn
from repro.construction.learned import topk_sparsify
from repro.construction.rules import knn_edges, pairwise_distances
from repro.datasets.preprocessing import MinMaxScaler, StandardScaler
from repro.gnn.readout import mean_readout, sum_readout
from repro.graph.utils import (
    coalesce_edge_index,
    safe_reciprocal,
    symmetrize_edge_index,
)
from repro.tensor import Tensor, ops

finite = st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False)


def small_matrix(max_rows=8, max_cols=6, min_rows=1, min_cols=1):
    return st.tuples(
        st.integers(min_rows, max_rows), st.integers(min_cols, max_cols)
    ).flatmap(lambda s: arrays(np.float64, s, elements=finite))


# ----------------------------------------------------------------------
# autograd engine
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(small_matrix())
def test_add_gradient_is_ones(x):
    t = Tensor(x, requires_grad=True)
    ops.sum(ops.add(t, Tensor(np.ones_like(x)))).backward()
    np.testing.assert_allclose(t.grad, np.ones_like(x))


@settings(max_examples=30, deadline=None)
@given(small_matrix())
def test_mul_gradient_is_other_operand(x):
    other = np.full_like(x, 2.5)
    t = Tensor(x, requires_grad=True)
    ops.sum(ops.mul(t, Tensor(other))).backward()
    np.testing.assert_allclose(t.grad, other)


@settings(max_examples=30, deadline=None)
@given(small_matrix(min_cols=2))
def test_softmax_rows_are_distributions(x):
    out = ops.softmax(Tensor(x), axis=-1).data
    assert np.all(out >= 0)
    np.testing.assert_allclose(out.sum(axis=-1), 1.0, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(small_matrix())
def test_relu_idempotent(x):
    once = ops.relu(Tensor(x)).data
    twice = ops.relu(Tensor(once)).data
    np.testing.assert_allclose(once, twice)


@settings(max_examples=30, deadline=None)
@given(small_matrix(), st.integers(0, 4))
def test_segment_sum_conserves_mass(x, extra_segments):
    n = x.shape[0]
    rng = np.random.default_rng(0)
    seg = rng.integers(0, n + extra_segments, size=n)
    out = ops.segment_sum(Tensor(x), seg, n + extra_segments).data
    np.testing.assert_allclose(out.sum(axis=0), x.sum(axis=0), atol=1e-8)


@settings(max_examples=30, deadline=None)
@given(arrays(np.float64, st.integers(2, 20), elements=finite))
def test_segment_softmax_within_single_segment_is_softmax(scores):
    seg = np.zeros(len(scores), dtype=np.int64)
    out = ops.segment_softmax(Tensor(scores), seg, 1).data
    expected = ops.softmax(Tensor(scores.reshape(1, -1))).data.reshape(-1)
    np.testing.assert_allclose(out, expected, atol=1e-9)


# ----------------------------------------------------------------------
# graph utilities
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(st.integers(2, 10), st.integers(1, 30))
def test_symmetrize_makes_edge_set_symmetric(num_nodes, num_edges):
    rng = np.random.default_rng(num_nodes * 100 + num_edges)
    edges = rng.integers(0, num_nodes, size=(2, num_edges))
    sym, _ = symmetrize_edge_index(edges)
    pairs = set(map(tuple, sym.T))
    assert all((b, a) in pairs for a, b in pairs)


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 10), st.integers(1, 30))
def test_coalesce_is_idempotent_and_duplicate_free(num_nodes, num_edges):
    rng = np.random.default_rng(num_nodes * 7 + num_edges)
    edges = rng.integers(0, num_nodes, size=(2, num_edges))
    once, _ = coalesce_edge_index(edges)
    twice, _ = coalesce_edge_index(once)
    assert once.shape == twice.shape
    assert len(set(map(tuple, once.T))) == once.shape[1]


@settings(max_examples=20, deadline=None)
@given(arrays(np.float64, st.integers(1, 10),
              elements=st.floats(0, 100, allow_nan=False)))
def test_safe_reciprocal_no_inf(values):
    out = safe_reciprocal(values)
    assert np.all(np.isfinite(out))
    positive = values > 0
    mask = positive & (values > 1e-100)
    np.testing.assert_allclose(out[mask] * values[mask], 1.0, atol=1e-9)


@settings(max_examples=20, deadline=None)
@given(st.integers(4, 15), st.integers(1, 3))
def test_knn_outdegree_invariant(n, k):
    rng = np.random.default_rng(n * 10 + k)
    x = rng.normal(size=(n, 3))
    edges = knn_edges(x, k=k)
    counts = np.bincount(edges[1], minlength=n)
    assert np.all(counts == k)


@settings(max_examples=20, deadline=None)
@given(st.integers(3, 10))
def test_pairwise_distance_symmetry_and_triangle(n):
    rng = np.random.default_rng(n)
    x = rng.normal(size=(n, 4))
    d = pairwise_distances(x, "euclidean")
    np.testing.assert_allclose(d, d.T, atol=1e-8)
    # triangle inequality on a random triple
    i, j, k = rng.integers(0, n, size=3)
    assert d[i, k] <= d[i, j] + d[j, k] + 1e-8


@settings(max_examples=20, deadline=None)
@given(st.integers(3, 10), st.integers(1, 3))
def test_topk_mask_row_counts(n, k):
    rng = np.random.default_rng(n * 3 + k)
    if k >= n:
        return
    mask = topk_sparsify(rng.normal(size=(n, n)), k)
    np.testing.assert_array_equal(mask.sum(axis=1), k)


# ----------------------------------------------------------------------
# preprocessing
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(small_matrix(min_rows=2))
def test_standard_scaler_inverse_roundtrip(x):
    scaler = StandardScaler()
    z = scaler.fit_transform(x)
    np.testing.assert_allclose(scaler.inverse_transform(z), x, atol=1e-6)


@settings(max_examples=30, deadline=None)
@given(small_matrix(min_rows=2))
def test_minmax_scaler_output_in_unit_box(x):
    z = MinMaxScaler().fit_transform(x)
    assert np.all(z >= -1e-12) and np.all(z <= 1 + 1e-12)


# ----------------------------------------------------------------------
# losses & metrics
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(small_matrix(min_rows=2, min_cols=2))
def test_cross_entropy_nonnegative(logits):
    targets = np.zeros(logits.shape[0], dtype=np.int64)
    loss = nn.cross_entropy(Tensor(logits), targets).item()
    assert loss >= -1e-9


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 50))
def test_auc_complement_when_scores_negated(n):
    rng = np.random.default_rng(n)
    y = rng.integers(0, 2, size=n)
    if y.sum() in (0, n):
        y[0] = 0
        y[1] = 1
    scores = rng.normal(size=n)
    auc = metrics.roc_auc(y, scores)
    flipped = metrics.roc_auc(y, -scores)
    assert auc + flipped == 1.0 or abs(auc + flipped - 1.0) < 1e-9


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 40))
def test_accuracy_bounds(n):
    rng = np.random.default_rng(n)
    y = rng.integers(0, 3, size=n)
    pred = rng.integers(0, 3, size=n)
    acc = metrics.accuracy(y, pred)
    assert 0.0 <= acc <= 1.0


# ----------------------------------------------------------------------
# readout invariance
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(st.integers(1, 5), st.integers(2, 6), st.integers(1, 4))
def test_readout_permutation_invariance(batch, nodes, dim):
    rng = np.random.default_rng(batch * 100 + nodes * 10 + dim)
    h = rng.normal(size=(batch, nodes, dim))
    perm = rng.permutation(nodes)
    for readout in (sum_readout, mean_readout):
        a = readout(Tensor(h)).data
        b = readout(Tensor(h[:, perm])).data
        np.testing.assert_allclose(a, b, atol=1e-10)
