"""Unit tests for evaluation metrics."""

import numpy as np
import pytest

from repro import metrics

RNG = np.random.default_rng(21)


class TestAccuracy:
    def test_basic(self):
        assert metrics.accuracy(np.array([1, 0, 1]), np.array([1, 1, 1])) == pytest.approx(2 / 3)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            metrics.accuracy(np.ones(3), np.ones(4))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            metrics.accuracy(np.array([]), np.array([]))


class TestROCAUC:
    def test_perfect_separation(self):
        y = np.array([0, 0, 1, 1])
        assert metrics.roc_auc(y, np.array([0.1, 0.2, 0.8, 0.9])) == 1.0

    def test_reversed_scores(self):
        y = np.array([0, 0, 1, 1])
        assert metrics.roc_auc(y, np.array([0.9, 0.8, 0.2, 0.1])) == 0.0

    def test_random_scores_near_half(self):
        y = RNG.integers(0, 2, size=2000)
        scores = RNG.random(2000)
        assert metrics.roc_auc(y, scores) == pytest.approx(0.5, abs=0.05)

    def test_ties_average(self):
        y = np.array([0, 1, 0, 1])
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        assert metrics.roc_auc(y, scores) == pytest.approx(0.5)

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            metrics.roc_auc(np.zeros(4), np.ones(4))

    def test_matches_pairwise_definition(self):
        y = RNG.integers(0, 2, size=50)
        y[0], y[1] = 0, 1
        scores = RNG.normal(size=50)
        pos = scores[y == 1]
        neg = scores[y == 0]
        wins = sum((p > n) + 0.5 * (p == n) for p in pos for n in neg)
        manual = wins / (len(pos) * len(neg))
        assert metrics.roc_auc(y, scores) == pytest.approx(manual)


class TestAveragePrecision:
    def test_perfect_ranking(self):
        y = np.array([1, 1, 0, 0])
        assert metrics.average_precision(y, np.array([4.0, 3.0, 2.0, 1.0])) == 1.0

    def test_worst_ranking(self):
        y = np.array([0, 0, 0, 1])
        ap = metrics.average_precision(y, np.array([4.0, 3.0, 2.0, 1.0]))
        assert ap == pytest.approx(0.25)

    def test_no_positive_raises(self):
        with pytest.raises(ValueError):
            metrics.average_precision(np.zeros(3), np.ones(3))


class TestF1:
    def test_precision_recall_f1(self):
        y = np.array([1, 1, 0, 0])
        pred = np.array([1, 0, 1, 0])
        result = metrics.precision_recall_f1(y, pred)
        assert result["precision"] == pytest.approx(0.5)
        assert result["recall"] == pytest.approx(0.5)
        assert result["f1"] == pytest.approx(0.5)

    def test_no_predictions_gives_zero(self):
        result = metrics.precision_recall_f1(np.array([1, 1]), np.array([0, 0]))
        assert result["f1"] == 0.0

    def test_macro_f1_averages_classes(self):
        y = np.array([0, 0, 1, 1])
        pred = np.array([0, 0, 1, 0])
        per_class_0 = metrics.precision_recall_f1(y, pred, positive=0)["f1"]
        per_class_1 = metrics.precision_recall_f1(y, pred, positive=1)["f1"]
        assert metrics.macro_f1(y, pred) == pytest.approx((per_class_0 + per_class_1) / 2)


class TestConfusionMatrix:
    def test_entries(self):
        y = np.array([0, 1, 1, 2])
        pred = np.array([0, 1, 2, 2])
        cm = metrics.confusion_matrix(y, pred, 3)
        assert cm[1, 1] == 1 and cm[1, 2] == 1 and cm.sum() == 4


class TestLogLoss:
    def test_binary_vector(self):
        y = np.array([1, 0])
        probs = np.array([0.9, 0.1])
        expected = -np.mean([np.log(0.9), np.log(0.9)])
        assert metrics.log_loss(y, probs) == pytest.approx(expected)

    def test_matrix_probs(self):
        y = np.array([0, 1])
        probs = np.array([[0.8, 0.2], [0.3, 0.7]])
        expected = -np.mean([np.log(0.8), np.log(0.7)])
        assert metrics.log_loss(y, probs) == pytest.approx(expected)

    def test_clipping_prevents_inf(self):
        assert np.isfinite(metrics.log_loss(np.array([1]), np.array([0.0])))


class TestRegressionMetrics:
    def test_rmse(self):
        assert metrics.rmse(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == pytest.approx(
            np.sqrt(12.5)
        )

    def test_mae(self):
        assert metrics.mae(np.array([0.0, 0.0]), np.array([3.0, -4.0])) == pytest.approx(3.5)

    def test_r2_perfect_and_mean(self):
        y = np.array([1.0, 2.0, 3.0])
        assert metrics.r2_score(y, y) == pytest.approx(1.0)
        assert metrics.r2_score(y, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_r2_constant_target(self):
        assert metrics.r2_score(np.ones(3), np.zeros(3)) == 0.0


class TestPrecisionAtK:
    def test_top_k(self):
        y = np.array([1, 0, 1, 0])
        scores = np.array([0.9, 0.8, 0.7, 0.1])
        assert metrics.precision_at_k(y, scores, 2) == pytest.approx(0.5)
        assert metrics.precision_at_k(y, scores, 3) == pytest.approx(2 / 3)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            metrics.precision_at_k(np.ones(3), np.ones(3), 0)
        with pytest.raises(ValueError):
            metrics.precision_at_k(np.ones(3), np.ones(3), 4)
