"""Cross-formulation parity & serving matrix (seeded randomized fuzz).

The formulation × serving matrix is closed: every formulation registered
as servable must export → reload → serve, and the served probabilities
must match that formulation's oracle to 1e-8 —

* the **full-graph oracle** (``incremental=False``) where one exists
  (instance rebuilds the induced pool+queries graph, hypergraph appends
  query columns to the incidence, feature re-scores directly);
* the **transductive forward** where vocabulary lookup *is* the serve
  path (multiplex/hetero raise on ``incremental=False``), in which case
  served training rows must reproduce the training logits exactly.

The matrix is built from the live registry at collection time, so a
formulation registered later is fuzzed automatically with zero edits
here.  Rows are drawn from a seeded RNG: training rows (parity),
perturbed numericals and randomly-missing cells (validity), and a
never-seen categorical code for every formulation whose scorer keeps a
value vocabulary (detected by its ``unk_values`` counter, not by name).
"""

import numpy as np
import pytest

from repro import formulations
from repro.datasets import make_fraud
from repro.pipeline import run_pipeline
from repro.serving import InferenceEngine, ModelArtifact
from repro.tensor.ops import softmax_rows

SEED = 20260729
#: instance is the only formulation with a free network axis (one family
#: per conv substrate); every other formulation carries its architecture.
#: All five families ride the matrix so the compiled-plan lowering of each
#: conv substrate is fuzzed against the autograd oracle.
INSTANCE_NETWORKS = ("gcn", "sage", "gin", "gat", "gated")


def _matrix():
    cells = []
    for form in formulations.servable():
        if form == "instance":
            cells.extend((form, network) for network in INSTANCE_NETWORKS)
        else:
            cells.append((form, "default"))
    return cells


MATRIX = _matrix()


@pytest.fixture(scope="module")
def dataset():
    # Small n keeps every multiplex same-value group under the degree cap
    # (capped_groups == 0), the regime where value-node serving is exact.
    return make_fraud(n=140, seed=1)


@pytest.fixture(scope="module")
def trained(dataset):
    cache = {}

    def get(form, network):
        key = (form, network)
        if key not in cache:
            kwargs = {} if network == "default" else {"network": network}
            cache[key] = run_pipeline(
                dataset, formulation=form, max_epochs=5, seed=0, **kwargs
            )
        return cache[key]

    return get


def _cell_rng(form, network):
    # Deterministic per-cell stream that doesn't depend on matrix order.
    return np.random.default_rng(
        [SEED, sum(map(ord, form)), sum(map(ord, network))]
    )


def _oracle_engine(artifact):
    """The formulation's full-graph oracle, or ``None`` if the serve path
    is its own oracle (vocabulary-lookup formulations reject the flag)."""
    try:
        return InferenceEngine(artifact, cache_size=0, incremental=False)
    except ValueError:
        return None


def test_matrix_covers_every_servable_formulation():
    assert {form for form, _ in MATRIX} == set(formulations.servable())
    assert len(MATRIX) >= len(formulations.servable())


@pytest.mark.parametrize(("form", "network"), MATRIX)
def test_export_reload_serve_matches_oracle(form, network, tmp_path, dataset, trained):
    result = trained(form, network)
    artifact = result.export_artifact()
    loaded = ModelArtifact.load(artifact.save(tmp_path / f"{form}-{network}"))
    assert loaded.formulation == form
    engine = InferenceEngine(loaded, cache_size=0)

    rng = _cell_rng(form, network)
    idx = rng.choice(dataset.num_instances, size=16, replace=False)
    served = engine.predict_batch(dataset.numerical[idx], dataset.categorical[idx])
    assert np.isfinite(served).all()
    np.testing.assert_allclose(served.sum(axis=1), 1.0, atol=1e-10)

    oracle = _oracle_engine(loaded)
    if oracle is not None:
        expected = oracle.predict_batch(
            dataset.numerical[idx], dataset.categorical[idx]
        )
    else:
        # No full-graph path: the transductive forward is the oracle, and
        # value-node serving must reproduce it exactly on training rows.
        # softmax_rows is what the engine applies to scorer logits, so the
        # comparison uses the very same probability mapping.
        expected = softmax_rows(result.state.logits()[idx], axis=1)
    np.testing.assert_allclose(served, expected, atol=1e-8)


@pytest.mark.parametrize(("form", "network"), MATRIX)
def test_fuzzed_unseen_rows_serve_validly(form, network, dataset, trained):
    # Seeded fuzz over genuinely unseen traffic: perturbed numericals and
    # randomly-missing cells must score to finite, normalized probabilities
    # on the serve path, and on the full-graph oracle where one exists the
    # two paths must agree to 1e-8 even for these rows.
    artifact = trained(form, network).export_artifact()
    engine = InferenceEngine(artifact, cache_size=0)
    rng = _cell_rng(form, network)

    idx = rng.choice(dataset.num_instances, size=12, replace=False)
    numerical = dataset.numerical[idx] + rng.normal(
        0.0, 0.5, (idx.size, dataset.num_numerical)
    )
    categorical = dataset.categorical[idx].copy()
    missing = rng.random(numerical.shape) < 0.25
    numerical[missing] = np.nan
    categorical[rng.random(categorical.shape) < 0.25] = -1

    served = engine.predict_batch(numerical, categorical)
    assert served.shape == (idx.size, dataset.num_classes)
    assert np.isfinite(served).all()
    np.testing.assert_allclose(served.sum(axis=1), 1.0, atol=1e-10)

    oracle = _oracle_engine(artifact)
    if oracle is not None:
        np.testing.assert_allclose(
            served, oracle.predict_batch(numerical, categorical), atol=1e-8
        )


@pytest.mark.parametrize(("form", "network"), MATRIX)
def test_compiled_plan_matches_interpreted_scorer(form, network, dataset, trained):
    # The compiled plan (default) must reproduce the interpreted autograd
    # scorer to 1e-8 on every registered servable cell — including fuzzed
    # unseen rows, missing cells, and a never-seen categorical code — and
    # must keep the serving counters (unk_values, attach_edges) identical.
    # Plug-in formulations whose path cannot be lowered fall back to the
    # interpreted scorer, so this comparison holds for them trivially.
    artifact = trained(form, network).export_artifact()
    compiled = InferenceEngine(artifact, cache_size=0)
    interpreted = InferenceEngine(artifact, cache_size=0, compiled=False)
    assert compiled.compiled, "registry formulations all lower to plans"
    assert not interpreted.compiled
    assert compiled.compile_ms > 0.0
    rng = _cell_rng(form, network)

    idx = rng.choice(dataset.num_instances, size=12, replace=False)
    numerical = dataset.numerical[idx] + rng.normal(
        0.0, 0.5, (idx.size, dataset.num_numerical)
    )
    categorical = dataset.categorical[idx].copy()
    numerical[rng.random(numerical.shape) < 0.25] = np.nan
    categorical[rng.random(categorical.shape) < 0.25] = -1
    categorical[:2, 0] = 10_000_000  # never-seen code → UNK bucket

    np.testing.assert_allclose(
        compiled.predict_batch(numerical, categorical),
        interpreted.predict_batch(numerical, categorical),
        atol=1e-8,
    )
    np.testing.assert_allclose(
        compiled.predict(numerical[:1], categorical[:1]),
        interpreted.predict(numerical[:1], categorical[:1]),
        atol=1e-8,
    )
    for key in ("unk_values", "attach_edges"):
        assert compiled.stats.get(key) == interpreted.stats.get(key), key


@pytest.mark.parametrize("network", INSTANCE_NETWORKS)
def test_ivf_served_prediction_drift_bounded(network, dataset, trained):
    # The ANN acceptance bound: probabilities served through the IVF
    # retrieval index stay within 1e-3 of the exact index on the fuzz
    # rows.  The 140-row fuzz pool quantizes into ~12 cells and a missed
    # true neighbor moves a tiny pool's probabilities well past 1e-3, so
    # nprobe covers the full quantizer — certifying the whole IVF serve
    # path (coarse probing, CSR cell gather, subset re-ranking, counter
    # export) under the drift bound; the recall/latency tradeoff at
    # 10⁵–10⁶-row pools is enforced in bench_serving_throughput.py.
    artifact = trained("instance", network).export_artifact()
    exact = InferenceEngine(artifact, cache_size=0, index="exact")
    ivf = InferenceEngine(artifact, cache_size=0, index="ivf", nprobe=12)
    assert ivf.index == "ivf" and ivf.nprobe == 12
    assert ivf.index_build_ms > 0.0
    rng = _cell_rng("instance", network)

    idx = rng.choice(dataset.num_instances, size=12, replace=False)
    numerical = dataset.numerical[idx] + rng.normal(
        0.0, 0.5, (idx.size, dataset.num_numerical)
    )
    categorical = dataset.categorical[idx].copy()
    numerical[rng.random(numerical.shape) < 0.25] = np.nan
    categorical[rng.random(categorical.shape) < 0.25] = -1

    drift = np.abs(
        np.asarray(ivf.predict_batch(numerical, categorical))
        - np.asarray(exact.predict_batch(numerical, categorical))
    ).max()
    assert drift <= 1e-3, f"{network}: IVF served drift {drift:.2e} > 1e-3"
    assert ivf.stats["retrieval_probed_cells"] > 0
    assert ivf.stats["retrieval_candidates"] > 0


@pytest.mark.parametrize("network", INSTANCE_NETWORKS)
def test_exact_index_stays_bit_identical(network, dataset, trained):
    # index="exact" (and the default, which resolves to it) must not move
    # a single bit relative to an engine that never heard of index
    # selection — the guarantee that shipping the ANN backend changed
    # nothing for existing deployments.
    artifact = trained("instance", network).export_artifact()
    default = InferenceEngine(artifact, cache_size=0)
    explicit = InferenceEngine(artifact, cache_size=0, index="exact")
    assert default.index == "exact" and explicit.index == "exact"
    assert not default._scorer._pool_index.is_approximate
    rng = _cell_rng("instance", network)

    idx = rng.choice(dataset.num_instances, size=12, replace=False)
    numerical = dataset.numerical[idx] + rng.normal(
        0.0, 0.5, (idx.size, dataset.num_numerical)
    )
    categorical = dataset.categorical[idx]
    assert np.array_equal(
        default.predict_batch(numerical, categorical),
        explicit.predict_batch(numerical, categorical),
    )


def test_artifact_config_selects_index_without_engine_kwargs(dataset, trained):
    # The ModelArtifact path: a deployment can bake index selection into
    # the artifact config; an engine constructed with no kwargs honors it
    # (explicit engine kwargs still win).
    artifact = trained("instance", "gcn").export_artifact()
    artifact.fitted.config["index"] = "ivf"
    artifact.fitted.config["nprobe"] = 6
    engine = InferenceEngine(artifact, cache_size=0)
    assert engine.index == "ivf" and engine.nprobe == 6
    override = InferenceEngine(artifact, cache_size=0, index="exact")
    assert override.index == "exact"
    del artifact.fitted.config["index"]
    del artifact.fitted.config["nprobe"]


def test_non_retrieval_formulation_rejects_index_selection(trained):
    artifact = trained("multiplex", "default").export_artifact()
    with pytest.raises(ValueError, match="does not retrieve"):
        InferenceEngine(artifact, index="ivf")
    engine = InferenceEngine(artifact)
    assert engine.index is None and engine.nprobe is None


def test_hypergraph_round_trip_without_continuous_columns(tmp_path):
    # Regression: a dataset with no binned numerical columns persists an
    # *empty* bin_edges array; the artifact must still reload and serve
    # (reshape(0, -1) on an empty array is ill-defined).
    from repro.datasets.tabular import TabularDataset

    n = 40
    categorical = np.stack([np.arange(n) % 3, np.arange(n) % 4], axis=1)
    dataset = TabularDataset(
        np.zeros((n, 0)), categorical, (np.arange(n) % 2).astype(np.int64),
        "binary",
    )
    result = run_pipeline(dataset, formulation="hypergraph", max_epochs=2, seed=0)
    path = result.export_artifact().save(tmp_path / "cat-only")
    engine = InferenceEngine(ModelArtifact.load(path), cache_size=0)
    served = engine.predict_batch(dataset.numerical[:4], dataset.categorical[:4])
    np.testing.assert_allclose(
        served, softmax_rows(result.state.logits()[:4], axis=1), atol=1e-8
    )


@pytest.mark.parametrize(("form", "network"), MATRIX)
def test_every_formulation_exposes_stage_metrics(form, network, dataset, trained):
    # The observability contract is formulation-agnostic: any servable
    # artifact's engine exposes per-stage latency histograms (the score
    # span plus the encode stage every scorer marks, and the
    # plan_execute stage the compiled default serves through), the
    # request-latency histogram, and the drift gauges — all under its own
    # ``formulation`` label.
    artifact = trained(form, network).export_artifact()
    engine = InferenceEngine(artifact)
    assert engine.compiled, "matrix formulations all lower to compiled plans"
    engine.predict(dataset.numerical[0], dataset.categorical[0])
    engine.predict_batch(dataset.numerical[:6], dataset.categorical[:6])

    text = engine.registry.render_prometheus()

    def count_of(line_prefix):
        matches = [
            line for line in text.splitlines()
            if line.startswith(line_prefix)
        ]
        assert len(matches) == 1, line_prefix
        return float(matches[0].rsplit(" ", 1)[1])

    for endpoint, expected in (("predict", 1), ("predict_batch", 1)):
        assert count_of(
            f'repro_request_duration_seconds_count'
            f'{{formulation="{form}",endpoint="{endpoint}"}}'
        ) == expected
    for stage in ("cache", "score", "encode", "plan_execute", "head"):
        assert count_of(
            f'repro_stage_duration_seconds_count'
            f'{{formulation="{form}",stage="{stage}"}}'
        ) >= 1, stage
    for gauge in (
        "repro_engine_unk_rate", "repro_engine_cache_hit_rate",
        "repro_engine_attach_fanout", "repro_engine_cache_entries",
        "repro_engine_compiled",
    ):
        assert f'{gauge}{{formulation="{form}"}}' in text, gauge
    # The internal request histogram's quantiles are real numbers the
    # bench can cross-check against an external timer.
    hist = engine.registry.get("repro_request_duration_seconds")
    p50 = hist.labels(formulation=form, endpoint="predict_batch").quantile(0.5)
    assert np.isfinite(p50) and p50 > 0


@pytest.mark.parametrize(("form", "network"), MATRIX)
def test_never_seen_value_serves_through_unk(form, network, dataset, trained):
    # Every value-node formulation (detected by capability: its scorer
    # registers an ``unk_values`` counter) must score a never-seen
    # categorical code without growing state, erroring, or going NaN.
    artifact = trained(form, network).export_artifact()
    engine = InferenceEngine(artifact, cache_size=0)
    if "unk_values" not in engine.stats:
        pytest.skip(f"{form} keeps no value vocabulary")
    categorical = dataset.categorical[:5].copy()
    categorical[:, 0] = 10_000_000
    probs = engine.predict_batch(dataset.numerical[:5], categorical)
    assert engine.stats["unk_values"] == 5
    assert np.isfinite(probs).all()
    np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-10)
