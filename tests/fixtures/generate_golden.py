"""Regenerate the golden artifact fixtures (run from the repo root).

    PYTHONPATH=src python tests/fixtures/generate_golden.py

Produces, next to this script:

* ``golden_v1.npz/.json`` — a tiny *legacy* (schema v1) instance artifact:
  ``pool::`` arrays, ``format_version`` key, no ``schema_version`` — the
  on-disk layout the library wrote before the versioned ``form::`` schema;
* ``golden_v2.npz/.json`` — a tiny schema-v2 hypergraph artifact
  (namespaced ``form::`` payload, ``schema_version`` sidecar);
* ``golden_expected.npz`` — the query rows plus the class probabilities
  each artifact must keep producing for them.

Weights are *deterministic* (index-derived, no RNG), so regenerating on
any platform yields the same predictions; regeneration is only needed if
the artifact schema itself changes (in which case add a new golden pair
rather than rewriting these — they exist to prove old saves keep loading).
"""

import json
import pathlib
import sys

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2] / "src"))

from repro.construction.rules import knn_graph  # noqa: E402
from repro.datasets.preprocessing import TabularPreprocessor  # noqa: E402
from repro.datasets.tabular import TabularDataset  # noqa: E402
from repro.formulations import HypergraphFormulation  # noqa: E402
from repro.gnn.networks import build_network  # noqa: E402
from repro.serving import InferenceEngine, ModelArtifact  # noqa: E402

HERE = pathlib.Path(__file__).resolve().parent


def _freeze_weights(model):
    """Overwrite every parameter with small index-derived values."""
    state = model.state_dict()
    frozen = {}
    for i, name in enumerate(sorted(state)):
        shape = state[name].shape
        size = int(np.prod(shape)) if shape else 1
        values = 0.05 * np.sin(np.arange(size, dtype=np.float64) + i)
        frozen[name] = values.reshape(shape)
    model.load_state_dict(frozen)
    return frozen


def _tiny_instance_dataset():
    n = 8
    numerical = np.stack(
        [np.linspace(-1.0, 1.0, n), np.linspace(1.0, -1.0, n) ** 2], axis=1
    )
    y = (np.arange(n) % 2).astype(np.int64)
    return TabularDataset(numerical, None, y, "binary")


def make_golden_v1():
    dataset = _tiny_instance_dataset()
    prep = TabularPreprocessor(mode="onehot").fit(dataset)
    x = prep.transform_dataset(dataset)
    graph = knn_graph(x, k=2, metric="euclidean", y=dataset.y)
    model = build_network(
        "gcn", graph, 4, 2, np.random.default_rng(0), num_layers=2
    )
    state_dict = _freeze_weights(model)
    artifact = ModelArtifact(
        formulation="instance",
        network="gcn",
        config={
            "hidden_dim": 4, "out_dim": 2, "k": 2, "metric": "euclidean",
            "num_layers": 2, "embed_dim": 2, "task": "binary",
        },
        state_dict=state_dict,
        preprocessor=prep,
        pool_x=np.asarray(graph.x, dtype=np.float64),
        pool_edge_index=graph.edge_index.astype(np.int64),
    )
    path = artifact.save(HERE / "golden_v1")
    # Rewrite to the exact legacy (pre-versioned) on-disk layout.
    with np.load(path) as data:
        arrays = {
            name.replace("form::", "pool::"): data[name] for name in data.files
        }
    np.savez(path, **arrays)
    sidecar = json.loads(path.with_suffix(".json").read_text())
    del sidecar["schema_version"]
    del sidecar["formulation_state"]
    sidecar["format_version"] = 1
    path.with_suffix(".json").write_text(
        json.dumps(sidecar, indent=2, sort_keys=True) + "\n"
    )
    return artifact, dataset


def _tiny_hypergraph_dataset():
    n = 10
    numerical = np.stack(
        [np.linspace(0.0, 2.0, n), (np.arange(n) % 2).astype(np.float64)],
        axis=1,
    )
    categorical = np.stack(
        [np.arange(n) % 3, np.arange(n) % 2], axis=1
    ).astype(np.int64)
    y = ((np.arange(n) % 3) == 0).astype(np.int64)
    return TabularDataset(numerical, categorical, y, "binary")


def make_golden_v2():
    dataset = _tiny_hypergraph_dataset()
    config = {
        "network": "hypergraph_gnn", "hidden_dim": 4, "out_dim": 2,
        "n_bins": 3, "num_layers": 2, "task": "binary",
    }
    fitted = HypergraphFormulation().fit(dataset, None, config)
    model = fitted.build_model(np.random.default_rng(0))
    state_dict = _freeze_weights(model)
    arrays, meta = fitted.artifact_payload()
    artifact = ModelArtifact(
        formulation="hypergraph",
        network=fitted.model_builder,
        config=config,
        state_dict=state_dict,
        preprocessor=fitted.preprocessor,
        payload_arrays=arrays,
        payload_meta=meta,
    )
    artifact.save(HERE / "golden_v2")
    return artifact, dataset


def main():
    v1_artifact, v1_dataset = make_golden_v1()
    v2_artifact, v2_dataset = make_golden_v2()
    v1_rows = (v1_dataset.numerical[:4], v1_dataset.categorical[:4])
    v2_rows = (v2_dataset.numerical[:4], v2_dataset.categorical[:4])
    np.savez(
        HERE / "golden_expected.npz",
        v1_numerical=v1_rows[0],
        v1_categorical=v1_rows[1],
        v1_probs=InferenceEngine(v1_artifact, cache_size=0).predict_batch(*v1_rows),
        v2_numerical=v2_rows[0],
        v2_categorical=v2_rows[1],
        v2_probs=InferenceEngine(v2_artifact, cache_size=0).predict_batch(*v2_rows),
    )
    for name in ("golden_v1", "golden_v2", "golden_expected"):
        for suffix in (".npz", ".json"):
            p = HERE / (name + suffix)
            if p.exists():
                print(f"wrote {p} ({p.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
