"""Unit tests for :mod:`repro.obs` — registry, counter bank, tracer.

The observability layer underpins ``/metrics`` and every serving stat, so
its arithmetic must be exact: histogram bucket boundaries are inclusive
upper bounds, exposition counts are cumulative, quantiles come from the
raw-observation reservoir, snapshots never lose concurrent increments,
and spans nest into the tree the instrumented code actually executed.
"""

import threading

import numpy as np
import pytest

from repro.obs import (
    SIZE_BUCKETS,
    CounterBank,
    MetricsRegistry,
    NULL_CONTEXT,
    Tracer,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestHistogramMath:
    def test_bucket_boundaries_are_inclusive_upper_bounds(self, registry):
        hist = registry.histogram("h", "", buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.0, 1.5, 2.0, 4.9, 5.0, 99.0):
            hist.observe(value)
        counts = hist.bucket_counts()
        # Cumulative: le=1 sees {0.5, 1.0}; le=2 adds {1.5, 2.0}; le=5
        # adds {4.9, 5.0}; +Inf adds the outlier.
        assert list(counts.items()) == [
            (1.0, 2), (2.0, 4), (5.0, 6), (float("inf"), 7),
        ]
        assert hist.count == 7
        assert hist.sum == pytest.approx(0.5 + 1.0 + 1.5 + 2.0 + 4.9 + 5.0 + 99.0)

    def test_quantile_uses_raw_reservoir_not_bucket_interpolation(self, registry):
        hist = registry.histogram("h", "", buckets=(10.0,))  # one giant bucket
        for value in range(1, 101):
            hist.observe(value / 1000.0)
        # Bucket interpolation could only answer "somewhere <= 10"; the
        # reservoir answers with the actual median of the observations.
        assert hist.quantile(0.5) == pytest.approx(0.0505, abs=1e-9)
        assert hist.quantile(0.0) == pytest.approx(0.001)
        assert hist.quantile(1.0) == pytest.approx(0.1)

    def test_quantile_on_empty_histogram_is_nan(self, registry):
        hist = registry.histogram("h", "")
        assert np.isnan(hist.quantile(0.5))
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_reservoir_is_a_ring_keeping_recent_observations(self, registry):
        hist = registry.histogram("h", "", reservoir_size=8)
        for _ in range(100):
            hist.observe(1000.0)  # stale burst
        for _ in range(8):
            hist.observe(1.0)  # recent regime overwrites the ring
        assert hist.quantile(0.5) == pytest.approx(1.0)
        assert hist.count == 108  # bucket counts still see everything

    def test_rejects_unsorted_buckets(self, registry):
        with pytest.raises(ValueError, match="sorted"):
            registry.histogram("bad", "", buckets=(2.0, 1.0))
        with pytest.raises(ValueError, match="sorted"):
            registry.histogram("dup", "", buckets=(1.0, 1.0))


class TestRegistrySemantics:
    def test_counter_refuses_to_decrease(self, registry):
        counter = registry.counter("c_total", "")
        counter.inc()
        counter.inc(2)
        assert counter.value == 3
        with pytest.raises(ValueError, match="only increase"):
            counter.inc(-1)

    def test_gauge_callback_evaluated_at_collection_time(self, registry):
        state = {"depth": 0}
        registry.gauge("depth", "").set_function(lambda: state["depth"])
        state["depth"] = 7
        snap = registry.snapshot()
        assert snap["depth"]["values"][0]["value"] == 7.0

    def test_gauge_callback_exception_becomes_nan_not_a_crash(self, registry):
        registry.gauge("boom", "").set_function(lambda: 1 / 0)
        value = registry.snapshot()["boom"]["values"][0]["value"]
        assert np.isnan(value)
        assert "boom NaN" in registry.render_prometheus().replace("nan", "NaN")

    def test_get_or_create_is_idempotent_but_kind_mismatch_raises(self, registry):
        first = registry.counter("x_total", "")
        assert registry.counter("x_total", "") is first
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x_total", "")
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("x_total", "", labelnames=("a",))

    def test_invalid_metric_names_rejected(self, registry):
        for bad in ("", "has space", "dash-name", 'quote"'):
            with pytest.raises(ValueError, match="invalid metric name"):
                registry.counter(bad, "")

    def test_labeled_children_are_cached_per_label_values(self, registry):
        family = registry.counter("req_total", "", labelnames=("path",))
        a = family.labels(path="/predict")
        assert family.labels(path="/predict") is a
        assert family.labels(path="/healthz") is not a
        with pytest.raises(ValueError, match="expected labels"):
            family.labels(route="/predict")
        with pytest.raises(ValueError, match="call .labels"):
            family.inc()  # label-less pass-through on a labeled family


class TestPrometheusRendering:
    def test_golden_exposition_text(self, registry):
        requests = registry.counter(
            "repro_requests_total", "Requests served.", labelnames=("path",)
        )
        requests.labels(path="/predict").inc(3)
        registry.gauge("repro_queue_depth", "Queue depth.").set(2)
        hist = registry.histogram(
            "repro_latency_seconds", "Latency.", buckets=(0.1, 1.0)
        )
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        assert registry.render_prometheus() == (
            "# HELP repro_requests_total Requests served.\n"
            "# TYPE repro_requests_total counter\n"
            'repro_requests_total{path="/predict"} 3\n'
            "# HELP repro_queue_depth Queue depth.\n"
            "# TYPE repro_queue_depth gauge\n"
            "repro_queue_depth 2\n"
            "# HELP repro_latency_seconds Latency.\n"
            "# TYPE repro_latency_seconds histogram\n"
            'repro_latency_seconds_bucket{le="0.1"} 1\n'
            'repro_latency_seconds_bucket{le="1"} 2\n'
            'repro_latency_seconds_bucket{le="+Inf"} 3\n'
            "repro_latency_seconds_sum 5.55\n"
            "repro_latency_seconds_count 3\n"
        )

    def test_label_values_are_escaped(self, registry):
        family = registry.counter("c_total", "", labelnames=("v",))
        family.labels(v='a"b\\c\nd').inc()
        assert r'c_total{v="a\"b\\c\nd"} 1' in registry.render_prometheus()

    def test_integers_render_without_trailing_point_zero(self, registry):
        registry.gauge("g", "").set(42.0)
        registry.gauge("g2", "").set(0.25)
        text = registry.render_prometheus()
        assert "g 42\n" in text and "g2 0.25" in text


class TestConcurrency:
    def test_no_increment_lost_under_thread_hammering(self, registry):
        counter = registry.counter("hits_total", "")
        hist = registry.histogram("lat", "", buckets=SIZE_BUCKETS)
        n_threads, per_thread = 16, 500

        def worker():
            for i in range(per_thread):
                counter.inc()
                hist.observe(float(i % 7))

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = n_threads * per_thread
        assert counter.value == total
        assert hist.count == total
        assert hist.bucket_counts()[float("inf")] == total

    def test_snapshots_are_monotone_while_writers_run(self, registry):
        # A reader interleaving with writers must never observe a value
        # going backwards, and paired writes (a then b) keep a >= b in
        # every locked snapshot.
        a = registry.counter("a_total", "")
        b = registry.counter("b_total", "")
        stop = threading.Event()
        violations = []

        def writer():
            while not stop.is_set():
                a.inc()
                b.inc()

        def reader():
            last = -1.0
            for _ in range(2000):
                snap = registry.snapshot()
                va = snap["a_total"]["values"][0]["value"]
                vb = snap["b_total"]["values"][0]["value"]
                if va < vb or vb < last:
                    violations.append((va, vb))
                last = vb
            stop.set()

        threads = [threading.Thread(target=writer) for _ in range(4)]
        threads.append(threading.Thread(target=reader))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not violations


class TestCounterBank:
    def test_dict_dialect_backed_by_registry_metrics(self, registry):
        bank = CounterBank(registry, "repro_engine",
                           labels={"formulation": "instance"})
        bank.setdefault("rows", 0)
        bank["rows"] += 5
        bank["unk_values"] = 2
        assert dict(bank) == {"rows": 5, "unk_values": 2}
        assert bank["rows"] == 5 and isinstance(bank["rows"], int)
        text = registry.render_prometheus()
        assert 'repro_engine_rows_total{formulation="instance"} 5' in text
        assert 'repro_engine_unk_values_total{formulation="instance"} 2' in text

    def test_gauge_keys_render_without_total_suffix(self, registry):
        bank = CounterBank(registry, "repro_batcher", gauges=("largest_batch",))
        bank["largest_batch"] = 4
        bank["largest_batch"] = max(bank["largest_batch"], 2)
        assert bank["largest_batch"] == 4
        assert "repro_batcher_largest_batch 4" in registry.render_prometheus()
        assert registry.get("repro_batcher_largest_batch").kind == "gauge"

    def test_unmaterialized_key_raises_keyerror(self, registry):
        bank = CounterBank(registry, "p")
        with pytest.raises(KeyError):
            bank["never_written"]
        assert "never_written" not in bank

    def test_snapshot_reads_all_keys_under_one_lock(self, registry):
        # Mutation contract mirrors the engine's: one writer at a time
        # (the engine serializes ``stats[...] += n`` under its own lock —
        # bank ``+=`` is get-then-set, not atomic across writers).  The
        # bank's own promise is the *snapshot*: all keys read under one
        # registry lock, so a reader never sees "hits" ahead of "rows".
        bank = CounterBank(registry, "p")
        bank.setdefault("rows", 0)
        bank.setdefault("hits", 0)
        stop = threading.Event()
        violations = []

        def writer():
            while not stop.is_set():
                bank["rows"] += 1  # always written before hits
                bank["hits"] += 1

        def reader():
            for _ in range(2000):
                snap = bank.snapshot()
                if snap["rows"] < snap["hits"]:
                    violations.append(snap)
            stop.set()

        threads = [threading.Thread(target=writer), threading.Thread(target=reader)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not violations
        assert bank["rows"] in (bank["hits"], bank["hits"] + 1)


class TestTracer:
    def test_spans_nest_into_the_executed_tree(self, registry):
        tracer = Tracer(registry, const_labels={"formulation": "t"})
        with tracer.span("request"):
            with tracer.span("cache"):
                pass
            with tracer.span("score"):
                with tracer.span("encode"):
                    pass
                with tracer.span("propagate"):
                    pass
        root = tracer.last_root()
        assert root.name == "request"
        assert [c.name for c in root.children] == ["cache", "score"]
        score = root.find("score")
        assert [c.name for c in score.children] == ["encode", "propagate"]
        assert root.find("missing") is None
        assert root.duration >= score.duration >= 0.0
        assert tracer.current() is None  # stack fully unwound

    def test_every_span_lands_in_the_stage_histogram(self, registry):
        tracer = Tracer(registry, const_labels={"formulation": "t"})
        for _ in range(3):
            with tracer.span("encode"):
                pass
        assert tracer.stage_histogram("encode").count == 3
        text = registry.render_prometheus()
        assert (
            'repro_stage_duration_seconds_count{formulation="t",stage="encode"} 3'
            in text
        )

    def test_threads_trace_independently(self, registry):
        tracer = Tracer(registry)
        roots = {}

        def worker(name):
            with tracer.span(name):
                with tracer.span(name + "-inner"):
                    pass
            roots[name] = tracer.last_root()

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for name, root in roots.items():
            assert root.name == name  # no cross-thread parenting
            assert [c.name for c in root.children] == [name + "-inner"]
        assert tracer.last_root() is None  # main thread never traced

    def test_null_context_is_reusable_and_transparent(self):
        with NULL_CONTEXT:
            with NULL_CONTEXT:
                pass
        with pytest.raises(RuntimeError):
            with NULL_CONTEXT:
                raise RuntimeError("propagates")
