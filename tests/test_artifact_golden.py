"""Golden-artifact regression tests.

Two tiny artifacts are checked into ``tests/fixtures/`` (see
``generate_golden.py`` there): a *legacy* schema-v1 instance artifact
(``pool::`` arrays, ``format_version`` sidecar key) and a current
schema-v2 hypergraph artifact (namespaced ``form::`` payload).  They pin
three contracts refactors keep breaking silently:

* old saves keep **loading** (both schemas) and keep producing the exact
  probabilities recorded at generation time;
* a sidecar declaring a schema this library does not know is **rejected**,
  never half-loaded;
* a fresh save is **byte-stable**: saving the same artifact twice, or
  saving → loading → saving, produces identical ``.npz`` and ``.json``
  bytes — the property that makes artifact diffs meaningful in deploy
  pipelines.
"""

import json
import pathlib
import shutil

import numpy as np
import pytest

from repro.serving import InferenceEngine, ModelArtifact
from repro.serving.artifact import ARTIFACT_SCHEMA_VERSION

FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures"


@pytest.fixture(scope="module")
def expected():
    with np.load(FIXTURES / "golden_expected.npz") as data:
        return {name: data[name] for name in data.files}


class TestGoldenLoads:
    def test_v1_legacy_fixture_loads_and_reproduces_probs(self, expected):
        artifact = ModelArtifact.load(FIXTURES / "golden_v1.npz")
        assert artifact.schema_version == 1
        assert artifact.formulation == "instance"
        assert artifact.pool_x is not None
        probs = InferenceEngine(artifact, cache_size=0).predict_batch(
            expected["v1_numerical"], expected["v1_categorical"]
        )
        np.testing.assert_allclose(probs, expected["v1_probs"], atol=1e-8)

    def test_v2_fixture_loads_and_reproduces_probs(self, expected):
        artifact = ModelArtifact.load(FIXTURES / "golden_v2.npz")
        assert artifact.schema_version == ARTIFACT_SCHEMA_VERSION
        assert artifact.formulation == "hypergraph"
        probs = InferenceEngine(artifact, cache_size=0).predict_batch(
            expected["v2_numerical"], expected["v2_categorical"]
        )
        np.testing.assert_allclose(probs, expected["v2_probs"], atol=1e-8)

    def test_v2_fixture_serves_incrementally_with_oracle_parity(self, expected):
        artifact = ModelArtifact.load(FIXTURES / "golden_v2.npz")
        rows = (expected["v2_numerical"], expected["v2_categorical"])
        inc = InferenceEngine(artifact, cache_size=0)
        assert inc.incremental
        oracle = InferenceEngine(artifact, cache_size=0, incremental=False)
        np.testing.assert_allclose(
            inc.predict_batch(*rows), oracle.predict_batch(*rows), atol=1e-8
        )


class TestSchemaRejection:
    @pytest.mark.parametrize("fixture", ["golden_v1", "golden_v2"])
    def test_unknown_schema_version_rejected(self, fixture, tmp_path):
        for suffix in (".npz", ".json"):
            shutil.copy(FIXTURES / (fixture + suffix), tmp_path / ("m" + suffix))
        sidecar = json.loads((tmp_path / "m.json").read_text())
        sidecar["schema_version"] = ARTIFACT_SCHEMA_VERSION + 5
        (tmp_path / "m.json").write_text(json.dumps(sidecar))
        with pytest.raises(ValueError, match="unknown artifact schema"):
            ModelArtifact.load(tmp_path / "m.npz")


class TestByteStability:
    @pytest.mark.parametrize("fixture", ["golden_v1", "golden_v2"])
    def test_fresh_save_round_trips_byte_stably(self, fixture, tmp_path):
        artifact = ModelArtifact.load(FIXTURES / (fixture + ".npz"))
        first = artifact.save(tmp_path / "first")
        second = ModelArtifact.load(first).save(tmp_path / "second")
        assert first.read_bytes() == second.read_bytes()
        assert (
            first.with_suffix(".json").read_bytes()
            == second.with_suffix(".json").read_bytes()
        )

    def test_saving_twice_is_identical(self, tmp_path):
        artifact = ModelArtifact.load(FIXTURES / "golden_v2.npz")
        a = artifact.save(tmp_path / "a")
        b = artifact.save(tmp_path / "b")
        assert a.read_bytes() == b.read_bytes()

    def test_v1_resave_upgrades_to_current_schema(self, tmp_path, expected):
        # Re-saving a legacy artifact writes the current schema and must
        # not change what it predicts.
        legacy = ModelArtifact.load(FIXTURES / "golden_v1.npz")
        upgraded = ModelArtifact.load(legacy.save(tmp_path / "upgraded"))
        assert upgraded.schema_version == ARTIFACT_SCHEMA_VERSION
        probs = InferenceEngine(upgraded, cache_size=0).predict_batch(
            expected["v1_numerical"], expected["v1_categorical"]
        )
        np.testing.assert_allclose(probs, expected["v1_probs"], atol=1e-8)
