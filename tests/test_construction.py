"""Unit tests for graph construction: rules, intrinsic, learned, retrieval."""

import numpy as np
import pytest

from repro import nn
from repro.construction import (
    DirectGraphLearner,
    MetricGraphLearner,
    NeuralGraphLearner,
    bipartite_from_dataset,
    dense_gcn_norm,
    feature_graph_from_correlation,
    feature_graph_from_knowledge,
    fully_connected_graph,
    hetero_from_dataset,
    hypergraph_from_dataset,
    knn_edges,
    knn_graph,
    multiplex_from_dataset,
    pairwise_distances,
    pairwise_similarity,
    retrieval_augmented_graph,
    same_value_graph,
    threshold_graph,
    topk_sparsify,
)
from repro.datasets import TabularDataset, make_correlated_instances, make_fraud
from repro.graph import edge_homophily
from repro.tensor import Tensor, ops

RNG = np.random.default_rng(5)


class TestPairwiseMeasures:
    def test_euclidean_matches_manual(self):
        x = RNG.normal(size=(6, 3))
        d = pairwise_distances(x, "euclidean")
        manual = np.linalg.norm(x[2] - x[4])
        assert d[2, 4] == pytest.approx(manual, abs=1e-10)
        np.testing.assert_allclose(np.diag(d), 0.0, atol=1e-6)

    def test_manhattan(self):
        x = np.array([[0.0, 0.0], [1.0, 2.0]])
        assert pairwise_distances(x, "manhattan")[0, 1] == pytest.approx(3.0)

    def test_cosine_distance_range(self):
        x = RNG.normal(size=(5, 4))
        d = pairwise_distances(x, "cosine")
        assert np.all(d >= -1e-12) and np.all(d <= 2 + 1e-12)

    def test_cosine_similarity_self_is_one(self):
        x = RNG.normal(size=(5, 4))
        s = pairwise_similarity(x, "cosine")
        np.testing.assert_allclose(np.diag(s), 1.0)

    def test_rbf_in_unit_interval(self):
        s = pairwise_similarity(RNG.normal(size=(6, 3)), "rbf")
        assert np.all(s > 0) and np.all(s <= 1 + 1e-12)

    def test_pearson_invariant_to_row_shift(self):
        x = RNG.normal(size=(4, 5))
        s1 = pairwise_similarity(x, "pearson")
        s2 = pairwise_similarity(x + 10.0, "pearson")
        np.testing.assert_allclose(s1, s2, atol=1e-10)

    def test_unknown_measure_raises(self):
        with pytest.raises(ValueError):
            pairwise_similarity(np.ones((2, 2)), "minkowski7")
        with pytest.raises(ValueError):
            pairwise_distances(np.ones((2, 2)), "nope")


class TestKNN:
    def test_each_node_has_k_out_neighbors(self):
        x = RNG.normal(size=(20, 4))
        edges = knn_edges(x, k=3)
        assert edges.shape == (2, 60)
        counts = np.bincount(edges[1], minlength=20)
        np.testing.assert_array_equal(counts, 3)

    def test_no_self_edges(self):
        edges = knn_edges(RNG.normal(size=(10, 2)), k=4)
        assert np.all(edges[0] != edges[1])

    def test_nearest_neighbor_is_correct(self):
        x = np.array([[0.0], [0.1], [5.0]])
        edges, dist = knn_edges(x, k=1, include_distances=True)
        lookup = {dst: src for src, dst in edges.T}
        assert lookup[0] == 1 and lookup[1] == 0 and lookup[2] == 1
        assert dist[0] == pytest.approx(0.1)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            knn_edges(np.ones((3, 1)), k=3)
        with pytest.raises(ValueError):
            knn_edges(np.ones((3, 1)), k=0)

    def test_symmetric_graph(self):
        g = knn_graph(RNG.normal(size=(15, 3)), k=3)
        pairs = set(map(tuple, g.edge_index.T))
        assert all((b, a) in pairs for a, b in pairs)

    def test_homophily_grows_with_cluster_strength(self):
        weak = make_correlated_instances(n=200, cluster_strength=0.0, seed=1)
        strong = make_correlated_instances(n=200, cluster_strength=3.0, seed=1)
        h_weak = edge_homophily(knn_graph(weak.to_matrix(), 5).edge_index, weak.y)
        h_strong = edge_homophily(knn_graph(strong.to_matrix(), 5).edge_index, strong.y)
        assert h_strong > h_weak + 0.2


class TestOtherRules:
    def test_threshold_graph_edges(self):
        x = np.array([[1.0, 0.0], [1.0, 0.01], [0.0, 1.0]])
        g = threshold_graph(x, threshold=0.9, measure="cosine")
        pairs = set(map(tuple, g.edge_index.T))
        assert (0, 1) in pairs and (1, 0) in pairs
        assert (0, 2) not in pairs

    def test_threshold_weighted(self):
        g = threshold_graph(RNG.normal(size=(6, 3)), threshold=-2.0,
                            measure="cosine", weighted=True)
        assert g.edge_weight is not None
        assert g.edge_weight.shape == (g.num_edges,)

    def test_fully_connected_count(self):
        g = fully_connected_graph(5)
        assert g.num_edges == 20
        g_loops = fully_connected_graph(5, self_loops=True)
        assert g_loops.num_edges == 25

    def test_same_value_graph_connects_groups(self):
        codes = np.array([0, 0, 1, 1, 1, -1])
        g = same_value_graph(codes)
        pairs = set(map(tuple, g.edge_index.T))
        assert (0, 1) in pairs and (2, 3) in pairs
        assert not any(5 in p for p in pairs)  # missing code isolated
        assert (0, 2) not in pairs

    def test_same_value_graph_caps_edges(self):
        codes = np.zeros(50, dtype=int)
        g = same_value_graph(codes, max_group_degree=5)
        # Sampling bounds total edges at 2 * n * cap (symmetrized), far
        # below the full clique's 50 * 49.
        assert g.num_edges <= 2 * 50 * 5
        full = same_value_graph(codes, max_group_degree=None)
        assert full.num_edges == 50 * 49


class TestIntrinsicBuilders:
    def make_mixed(self):
        return make_fraud(n=80, seed=0)

    def test_bipartite_from_dataset(self):
        ds = self.make_mixed()
        g = bipartite_from_dataset(ds)
        assert g.num_instances == 80
        assert g.num_features == ds.num_numerical + ds.num_category_values
        # numerical part fully observed + one edge per categorical column
        assert g.num_edges == 80 * ds.num_numerical + 80 * ds.num_categorical

    def test_bipartite_requires_features(self):
        empty = TabularDataset(np.zeros((3, 0)), None, np.zeros(3), "binary")
        with pytest.raises(ValueError):
            bipartite_from_dataset(empty)

    def test_hetero_from_dataset(self):
        ds = self.make_mixed()
        g = hetero_from_dataset(ds)
        assert g.node_counts["instance"] == 80
        assert "device" in g.node_counts and "merchant" in g.node_counts
        assert any(et[1].startswith("rev_") for et in g.edge_types)
        assert g.y is not None and g.target_type == "instance"

    def test_hetero_requires_categoricals(self):
        numeric_only = make_correlated_instances(n=20, seed=0)
        with pytest.raises(ValueError):
            hetero_from_dataset(numeric_only)
        g = hetero_from_dataset(numeric_only, include_numerical_bins=True)
        assert len(g.node_counts) > 1

    def test_multiplex_from_dataset(self):
        ds = self.make_mixed()
        g = multiplex_from_dataset(ds)
        assert g.relations == ["device", "merchant"]
        assert g.num_nodes == 80

    def test_hypergraph_from_dataset(self):
        ds = self.make_mixed()
        h = hypergraph_from_dataset(ds, n_bins=4)
        assert h.num_hyperedges == 80
        expected_nodes = ds.num_category_values + ds.num_numerical * 4
        assert h.num_nodes == expected_nodes

    def test_hypergraph_binary_columns_become_membership_nodes(self):
        x = np.array([[1.0, 0.3], [0.0, 0.7], [1.0, 0.5]])
        ds = TabularDataset(x, None, np.zeros(3), "binary")
        h = hypergraph_from_dataset(ds, n_bins=2)
        # one membership node for the binary column + 2 bins for the other
        assert h.num_nodes == 1 + 2
        assert h.incidence[0, 0] == 1.0 and h.incidence[0, 1] == 0.0

    def test_feature_graph_from_correlation(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=400)
        x = np.stack([a, a + 0.01 * rng.normal(size=400), rng.normal(size=400)], axis=1)
        g = feature_graph_from_correlation(x, threshold=0.5)
        pairs = set(map(tuple, g.edge_index.T))
        assert (0, 1) in pairs
        assert (0, 2) not in pairs

    def test_feature_graph_from_knowledge(self):
        g = feature_graph_from_knowledge(4, [(0, 1), (2, 3)])
        assert g.num_nodes == 4
        assert g.num_edges == 4  # symmetrized
        with pytest.raises(ValueError):
            feature_graph_from_knowledge(4, [])


class TestLearnedConstruction:
    def test_topk_mask_counts(self):
        scores = RNG.normal(size=(8, 8))
        mask = topk_sparsify(scores, k=3)
        np.testing.assert_array_equal(mask.sum(axis=1), 3)
        assert np.all(np.diag(mask) == 0)

    def test_topk_invalid_k(self):
        with pytest.raises(ValueError):
            topk_sparsify(np.ones((4, 4)), k=4)

    def test_dense_gcn_norm_rows(self):
        adj = Tensor(np.abs(RNG.normal(size=(5, 5))))
        norm = dense_gcn_norm(adj)
        assert norm.shape == (5, 5)
        assert np.all(norm.data >= 0)

    def test_metric_learner_output(self):
        learner = MetricGraphLearner(4, np.random.default_rng(0), k=3)
        adj = learner(Tensor(RNG.normal(size=(10, 4))))
        assert adj.shape == (10, 10)
        assert np.all(adj.data >= 0)

    def test_metric_learner_gradient_reaches_weights(self):
        learner = MetricGraphLearner(4, np.random.default_rng(0))
        adj = learner(Tensor(RNG.normal(size=(6, 4))))
        ops.sum(adj).backward()
        assert learner.head_weights.grad is not None

    def test_neural_learner_blends_prior(self):
        prior = np.eye(8)
        learner = NeuralGraphLearner(4, 8, np.random.default_rng(0),
                                     k=3, init_adjacency=prior, blend=1.0)
        adj = learner(Tensor(RNG.normal(size=(8, 4))))
        assert adj.shape == (8, 8)

    def test_direct_learner_adjacency_symmetric(self):
        learner = DirectGraphLearner(6, np.random.default_rng(0))
        adj = learner.adjacency().data
        np.testing.assert_allclose(adj, adj.T, atol=1e-12)
        assert np.all((adj >= 0) & (adj <= 1))

    def test_direct_learner_prior_shape_checked(self):
        with pytest.raises(ValueError):
            DirectGraphLearner(4, np.random.default_rng(0), init_adjacency=np.ones((3, 3)))

    def test_direct_learner_sparsity_penalty_trainable(self):
        learner = DirectGraphLearner(5, np.random.default_rng(0))
        opt = nn.Adam(learner.parameters(), lr=0.5)
        before = learner.sparsity_penalty().item()
        for _ in range(30):
            loss = learner.sparsity_penalty()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert learner.sparsity_penalty().item() < before


class TestRetrieval:
    def test_queries_only_link_into_pool(self):
        x = RNG.normal(size=(20, 3))
        pool_mask = np.zeros(20, dtype=bool)
        pool_mask[:12] = True
        g = retrieval_augmented_graph(x, pool_mask, k=4)
        query_ids = set(np.nonzero(~pool_mask)[0])
        for src, dst in g.edge_index.T:
            assert not (src in query_ids and dst in query_ids)

    def test_pool_too_small_raises(self):
        with pytest.raises(ValueError):
            retrieval_augmented_graph(np.ones((5, 2)), np.array([True] * 3 + [False] * 2), k=3)

    def test_column_restricted_retrieval(self):
        x = RNG.normal(size=(15, 4))
        pool_mask = np.ones(15, dtype=bool)
        pool_mask[12:] = False
        g = retrieval_augmented_graph(x, pool_mask, k=3, columns=np.array([0, 1]))
        assert g.num_nodes == 15
        assert g.num_edges > 0
