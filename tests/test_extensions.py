"""Tests for the Sec. 6 extension modules: sampling, SSL tasks, robustness,
and the CARE-GNN neighbor-filtering model."""

import numpy as np
import pytest

from repro import nn, robustness
from repro.construction.intrinsic import multiplex_from_dataset
from repro.construction.rules import knn_graph
from repro.datasets import make_correlated_instances, make_fraud, train_val_test_masks
from repro.gnn.networks import GCN
from repro.gnn.sampling import SampledSAGE, _AdjacencyList, sample_neighborhood, train_sampled
from repro.metrics import accuracy, roc_auc
from repro.models import CAREGNN
from repro.tensor import Tensor
from repro.training.ssl import (
    GraphClusteringTask,
    GraphCompletionTask,
    NeighborhoodPredictionTask,
)

RNG = np.random.default_rng(61)


def rng():
    return np.random.default_rng(71)


def small_setup(n=200, seed=0):
    ds = make_correlated_instances(n=n, cluster_strength=1.5, seed=seed)
    x = ds.to_matrix()
    g = knn_graph(x, k=6, y=ds.y)
    return ds, x, g


class TestNeighborSampling:
    def test_adjacency_list_matches_edges(self):
        _, _, g = small_setup(50)
        adjacency = _AdjacencyList(g)
        for node in (0, 10, 49):
            expected = set(g.edge_index[0][g.edge_index[1] == node])
            assert set(adjacency.neighbors(node)) == expected

    def test_sampled_block_shapes(self):
        _, _, g = small_setup(60)
        adjacency = _AdjacencyList(g)
        seeds = np.array([0, 1, 2, 3])
        operators, input_nodes = sample_neighborhood(
            adjacency, seeds, fanouts=(3, 3), rng=np.random.default_rng(0)
        )
        assert len(operators) == 2
        # Outermost operator's rows = seeds.
        assert operators[-1][0].shape[0] == len(seeds)
        # Innermost operator's columns = all input nodes.
        assert operators[0][0].shape[1] == len(input_nodes)

    def test_fanout_bounds_sampled_edges(self):
        _, _, g = small_setup(80)
        adjacency = _AdjacencyList(g)
        operators, _ = sample_neighborhood(
            adjacency, np.arange(10), fanouts=(2,), rng=np.random.default_rng(0)
        )
        matrix, _ = operators[0]
        # Each row aggregates at most fanout=2 neighbors.
        row_counts = np.diff(matrix.indptr)
        assert row_counts.max() <= 2

    def test_training_reduces_loss_and_generalizes(self):
        ds, x, g = small_setup(300)
        train, _, test = train_val_test_masks(300, 0.5, 0.2,
                                              np.random.default_rng(0), stratify=ds.y)
        model = SampledSAGE(x.shape[1], 16, ds.num_classes, rng())
        history = train_sampled(g, ds.y, train, model, fanouts=(4, 4),
                                batch_size=64, epochs=6)
        assert history[-1] < history[0]
        logits = model.forward_full(Tensor(x), g.mean_adjacency()).data
        assert accuracy(ds.y[test], logits.argmax(1)[test]) > 0.6

    def test_fanout_arity_checked(self):
        ds, x, g = small_setup(60)
        model = SampledSAGE(x.shape[1], 8, 2, rng(), num_layers=2)
        with pytest.raises(ValueError):
            train_sampled(g, ds.y, np.ones(60, dtype=bool), model, fanouts=(3,))


class TestSSLTasks:
    def test_graph_completion_trains_link_structure(self):
        ds, x, g = small_setup(100)
        net = GCN(g, (16,), ds.num_classes, rng())
        task = GraphCompletionTask(16, g.edge_index, np.random.default_rng(0))
        params = net.parameters() + task.parameters()
        opt = nn.Adam(params, lr=0.01)
        losses = []
        for _ in range(25):
            loss = task.loss(net.embed())
            losses.append(loss.item())
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert np.mean(losses[-5:]) < np.mean(losses[:5])

    def test_graph_completion_rejects_empty_graph(self):
        with pytest.raises(ValueError):
            GraphCompletionTask(8, np.zeros((2, 0), dtype=np.int64),
                                np.random.default_rng(0))

    def test_neighborhood_prediction_loss_finite(self):
        ds, x, g = small_setup(80)
        net = GCN(g, (16,), ds.num_classes, rng())
        task = NeighborhoodPredictionTask(16, g.edge_index, np.random.default_rng(0))
        loss = task.loss(net.embed())
        assert np.isfinite(loss.item())
        loss.backward()
        assert any(p.grad is not None for p in task.parameters())

    def test_clustering_task_soft_assignments_are_distributions(self):
        task = GraphClusteringTask(8, 3, np.random.default_rng(0))
        q = task.soft_assignments(Tensor(RNG.normal(size=(20, 8))))
        np.testing.assert_allclose(q.data.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(q.data >= 0)

    def test_clustering_task_sharpens(self):
        task = GraphClusteringTask(4, 2, np.random.default_rng(0))
        z = Tensor(RNG.normal(size=(30, 4)), requires_grad=True)
        loss = task.loss(z)
        loss.backward()
        assert z.grad is not None
        with pytest.raises(ValueError):
            GraphClusteringTask(4, 1, np.random.default_rng(0))


class TestRobustness:
    def test_perturb_edges_keeps_counts_close(self):
        _, _, g = small_setup(100)
        noisy = robustness.perturb_edges(g, 0.3, np.random.default_rng(0))
        assert abs(noisy.num_edges - g.num_edges) < 0.1 * g.num_edges
        overlap = len(
            set(map(tuple, noisy.edge_index.T)) & set(map(tuple, g.edge_index.T))
        )
        assert overlap < g.num_edges  # some edges replaced

    def test_perturb_edges_zero_rate_identity(self):
        _, _, g = small_setup(50)
        same = robustness.perturb_edges(g, 0.0)
        assert same.num_edges == g.num_edges

    def test_perturb_edges_validates_rate(self):
        _, _, g = small_setup(30)
        with pytest.raises(ValueError):
            robustness.perturb_edges(g, 1.5)

    def test_structural_noise_degrades_accuracy(self):
        ds, x, g = small_setup(250)
        train, val, test = train_val_test_masks(250, 0.3, 0.2,
                                                np.random.default_rng(0),
                                                stratify=ds.y)

        def evaluate(graph):
            graph.x = x
            model = GCN(graph, (16,), ds.num_classes, rng())
            opt = nn.Adam(model.parameters(), lr=0.01)
            for _ in range(60):
                loss = nn.cross_entropy(model(), ds.y, mask=train)
                opt.zero_grad()
                loss.backward()
                opt.step()
            model.eval()
            return accuracy(ds.y[test], model().data.argmax(1)[test])

        clean = evaluate(g)
        noisy = evaluate(robustness.perturb_edges(g, 0.8, np.random.default_rng(0)))
        assert clean > noisy

    def test_feature_shift(self):
        x = RNG.normal(size=(20, 6))
        shifted = robustness.feature_shift(x, magnitude=2.0, column_fraction=0.5)
        moved = np.abs(shifted - x).max(axis=0) > 1.0
        assert 2 <= moved.sum() <= 4

    def test_oversmoothing_score_range(self):
        identical = np.tile(RNG.normal(size=(1, 8)), (10, 1))
        assert robustness.oversmoothing_score(identical) == pytest.approx(1.0)
        orthogonal = np.eye(8)
        assert robustness.oversmoothing_score(orthogonal) == pytest.approx(0.0)

    def test_feature_attack_reduces_confidence(self):
        ds, x, g = small_setup(150)
        from repro.baselines import LogisticRegressionClassifier

        clf = LogisticRegressionClassifier(epochs=200).fit(x, ds.y)
        attacked = robustness.worst_case_feature_attack(
            x, clf.predict_proba, ds.y, epsilon=2.0, num_probe=6
        )
        base_conf = clf.predict_proba(x)[np.arange(len(ds.y)), ds.y].mean()
        attacked_conf = clf.predict_proba(attacked)[np.arange(len(ds.y)), ds.y].mean()
        assert attacked_conf < base_conf


class TestCAREGNN:
    def build(self, camouflage=0.7, filter_neighbors=True):
        ds = make_fraud(n=250, camouflage=camouflage, feature_signal=0.4, seed=0)
        graph = multiplex_from_dataset(ds)
        model = CAREGNN(graph, 16, 2, rng(), rho=0.4,
                        filter_neighbors=filter_neighbors)
        return ds, model

    def test_forward_shape(self):
        ds, model = self.build()
        assert model().shape == (250, 2)
        assert model.embed().shape == (250, 16)

    def test_rho_validated(self):
        ds = make_fraud(n=100, seed=0)
        graph = multiplex_from_dataset(ds)
        with pytest.raises(ValueError):
            CAREGNN(graph, 8, 2, rng(), rho=0.0)

    def test_similarity_loss_uses_labeled_pairs(self):
        ds, model = self.build()
        train = np.ones(250, dtype=bool)
        loss = model.similarity_loss(ds.y, train, rng=np.random.default_rng(0))
        assert np.isfinite(loss.item())
        loss.backward()
        assert any(p.grad is not None for p in model.similarity_encoder.parameters())

    def test_joint_loss_trains(self):
        ds, model = self.build()
        train = np.zeros(250, dtype=bool)
        train[:150] = True
        opt = nn.Adam(model.parameters(), lr=0.01)
        loss_rng = np.random.default_rng(1)
        losses = []
        for _ in range(20):
            loss = model.loss(ds.y, train, rng=loss_rng)
            losses.append(loss.item())
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert losses[-1] < losses[0]

    def test_filtering_keeps_subset_of_edges(self):
        ds, model = self.build(filter_neighbors=True)
        edge_index = model._edge_indexes[0]
        sims = RNG.normal(size=edge_index.shape[1])
        filtered = model._filtered_operator(edge_index, sims)
        unfiltered_model = CAREGNN(
            multiplex_from_dataset(ds), 16, 2, rng(), filter_neighbors=False
        )
        unfiltered = unfiltered_model._filtered_operator(edge_index, sims)
        assert filtered.nnz <= unfiltered.nnz
