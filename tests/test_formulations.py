"""Tests for the first-class Formulation API and formulation-agnostic serving.

Covers the registry contract (dispatch, extension without pipeline edits),
the artifact save→load→serve round-trip for **every** servable formulation
— including exact transductive parity for the value-node formulations and
the UNK vocabulary bucket for never-seen categorical values — plus the
versioned artifact schema (legacy sidecar upgrade, unknown-version
rejection) and the enriched ``/healthz`` payload.
"""

import json

import numpy as np
import pytest

from repro import formulations
from repro.formulations import FittedFormulation, Formulation
from repro.datasets import make_fraud
from repro.pipeline import FORMULATIONS, run_pipeline
from repro.serving import InferenceEngine, ModelArtifact, PredictionServer
from repro.serving.artifact import ARTIFACT_SCHEMA_VERSION

SERVABLE = ("instance", "feature", "multiplex", "hetero", "hypergraph")


def _softmax(logits):
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


@pytest.fixture(scope="module")
def dataset():
    # Small n keeps every same-value group under the degree cap, so the
    # multiplex value cliques are exact (group-mean) — the regime where
    # served training rows must reproduce transductive logits.
    return make_fraud(n=140, seed=0)


@pytest.fixture(scope="module")
def results(dataset):
    return {
        form: run_pipeline(dataset, formulation=form, max_epochs=8, seed=0)
        for form in SERVABLE
    }


# ----------------------------------------------------------------------
# registry contract
# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_survey_formulations_registered_in_order(self):
        assert FORMULATIONS == (
            "instance", "feature", "multiplex", "hetero", "hypergraph"
        )
        assert formulations.available() == FORMULATIONS

    def test_servable_is_a_capability_not_a_whitelist(self):
        # The formulation × serving matrix is closed: every registered
        # formulation exports a deployable artifact.  Servability stays a
        # per-class capability so plug-ins can still opt out.
        assert formulations.servable() == FORMULATIONS
        assert all(formulations.get(name).servable for name in FORMULATIONS)

    def test_unknown_formulation_lists_choices(self, dataset):
        with pytest.raises(ValueError, match="instance"):
            run_pipeline(dataset, formulation="nope", max_epochs=1)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            formulations.register(formulations.InstanceFormulation())

    def test_new_formulation_runs_through_pipeline_without_edits(self, dataset):
        # The acceptance bar for the registry: a brand-new formulation is
        # dispatchable by run_pipeline with zero pipeline changes.
        class TinyFitted(formulations.instance.FittedInstance):
            name = "tiny-instance"

        class TinyFormulation(formulations.InstanceFormulation):
            name = "tiny-instance"
            fitted_cls = TinyFitted

        formulations.register(TinyFormulation())
        try:
            result = run_pipeline(
                dataset, formulation="tiny-instance", max_epochs=2, seed=0
            )
            assert result.formulation == "tiny-instance"
            assert result.state.fitted.name == "tiny-instance"
        finally:
            formulations.unregister("tiny-instance")


# ----------------------------------------------------------------------
# round-trip + serving over every servable formulation
# ----------------------------------------------------------------------
class TestServableRoundTrip:
    @pytest.mark.parametrize("form", SERVABLE)
    def test_save_load_serve_round_trip(self, form, tmp_path, dataset, results):
        artifact = results[form].export_artifact()
        assert artifact.network == results[form].state.fitted.model_builder
        path = artifact.save(tmp_path / form)
        sidecar = json.loads(path.with_suffix(".json").read_text())
        assert sidecar["schema_version"] == ARTIFACT_SCHEMA_VERSION

        loaded = ModelArtifact.load(path)
        assert loaded.formulation == form
        before = InferenceEngine(artifact, cache_size=0).predict_batch(
            dataset.numerical[:6], dataset.categorical[:6]
        )
        after = InferenceEngine(loaded, cache_size=0).predict_batch(
            dataset.numerical[:6], dataset.categorical[:6]
        )
        np.testing.assert_array_equal(before, after)

    @pytest.mark.parametrize("form", ["multiplex", "hetero", "hypergraph"])
    def test_training_rows_match_transductive_logits(self, form, dataset, results):
        # Value-node serving is exact: a training-table row attaches to the
        # same frozen value nodes / value groups (or, for hypergraph, the
        # same member nodes of its hyperedge) it occupied in the training
        # graph, so served probabilities equal the transductive softmax to
        # float round-off.
        result = results[form]
        artifact = result.export_artifact()
        if form == "multiplex":
            # Exactness holds in the uncapped regime; the artifact says so.
            assert artifact.payload_meta["capped_groups"] == 0
        engine = InferenceEngine(artifact, cache_size=0)
        idx = np.arange(30)
        served = engine.predict_batch(
            dataset.numerical[idx], dataset.categorical[idx]
        )
        transductive = _softmax(result.state.logits()[idx])
        np.testing.assert_allclose(served, transductive, atol=1e-6)

    def test_multiplex_capped_groups_reported_and_still_serve(self, tmp_path):
        # Popular values blow past max_group_degree=30: the training graph
        # samples partners, so served group-mean aggregation is approximate.
        # The artifact must disclose that (capped_groups > 0) and still
        # produce valid predictions for group members.
        big = make_fraud(n=400, num_devices=5, num_merchants=4, seed=1)
        result = run_pipeline(big, formulation="multiplex", max_epochs=3, seed=0)
        artifact = result.export_artifact()
        assert artifact.payload_meta["capped_groups"] > 0
        path = artifact.save(tmp_path / "capped")
        loaded = ModelArtifact.load(path)
        assert (
            loaded.fitted.capped_groups == artifact.payload_meta["capped_groups"]
        )
        engine = InferenceEngine(loaded, cache_size=0)
        probs = engine.predict_batch(big.numerical[:5], big.categorical[:5])
        assert np.isfinite(probs).all()
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-10)

    @pytest.mark.parametrize("form", ["multiplex", "hetero", "hypergraph"])
    def test_unseen_value_hits_unk_bucket(self, form, tmp_path, dataset, results):
        path = results[form].export_artifact().save(tmp_path / form)
        engine = InferenceEngine(ModelArtifact.load(path), cache_size=0)
        fitted = engine.artifact.fitted
        if form == "multiplex":
            vocab_sizes = [len(v) for v in fitted.vocabularies]
        categorical = dataset.categorical[:4].copy()
        categorical[:, 0] = 10_000_000  # never seen in any training column
        probs = engine.predict_batch(dataset.numerical[:4], categorical)
        assert engine.stats["unk_values"] == 4
        assert np.isfinite(probs).all()
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-10)
        if form == "multiplex":
            # The UNK bucket must not silently grow the vocabulary.
            assert [len(v) for v in fitted.vocabularies] == vocab_sizes

    @pytest.mark.parametrize("form", ["multiplex", "hetero", "hypergraph"])
    def test_missing_categoricals_still_serve(self, form, dataset, results):
        engine = InferenceEngine(results[form].export_artifact(), cache_size=0)
        probs = engine.predict_batch(dataset.numerical[:3])  # no categoricals
        assert probs.shape == (3, dataset.num_classes)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-10)

    @pytest.mark.parametrize("form", ["multiplex", "hetero"])
    def test_no_full_graph_oracle_for_value_node_formulations(
        self, form, results
    ):
        with pytest.raises(ValueError, match="full-graph oracle"):
            InferenceEngine(
                results[form].export_artifact(), cache_size=0, incremental=False
            )

    def test_hypergraph_incremental_matches_full_graph_oracle(
        self, dataset, results
    ):
        # Unlike multiplex/hetero, hypergraph keeps a full-graph oracle
        # (queries appended as incidence columns, scored via the model's
        # ordinary spmm forward); the cached-node-state incremental path
        # must agree with it on genuinely unseen rows too.
        artifact = results["hypergraph"].export_artifact()
        rng = np.random.default_rng(7)
        numerical = dataset.numerical[:12] + rng.normal(0, 0.3, (12, dataset.num_numerical))
        categorical = dataset.categorical[:12]
        inc = InferenceEngine(artifact, cache_size=0).predict_batch(
            numerical, categorical
        )
        oracle = InferenceEngine(
            artifact, cache_size=0, incremental=False
        ).predict_batch(numerical, categorical)
        np.testing.assert_allclose(inc, oracle, atol=1e-8)


# ----------------------------------------------------------------------
# artifact schema versioning
# ----------------------------------------------------------------------
class TestArtifactSchema:
    def test_legacy_sidecar_without_schema_version_loads(
        self, tmp_path, dataset, results
    ):
        # Rebuild the v1 on-disk layout: pool:: arrays, format_version key.
        artifact = results["instance"].export_artifact()
        path = artifact.save(tmp_path / "legacy")
        with np.load(path) as data:
            arrays = {name: data[name] for name in data.files}
        legacy_arrays = {
            (name.replace("form::", "pool::")): value
            for name, value in arrays.items()
        }
        np.savez(path, **legacy_arrays)
        sidecar = json.loads(path.with_suffix(".json").read_text())
        del sidecar["schema_version"]
        del sidecar["formulation_state"]
        sidecar["format_version"] = 1
        path.with_suffix(".json").write_text(json.dumps(sidecar))

        loaded = ModelArtifact.load(path)
        assert loaded.schema_version == 1
        assert loaded.pool_x is not None
        # An explicit "schema_version": 1 is the same supported layout.
        sidecar["schema_version"] = 1
        path.with_suffix(".json").write_text(json.dumps(sidecar))
        assert ModelArtifact.load(path).schema_version == 1
        rows = (dataset.numerical[:5], dataset.categorical[:5])
        np.testing.assert_array_equal(
            InferenceEngine(loaded, cache_size=0).predict_batch(*rows),
            InferenceEngine(artifact, cache_size=0).predict_batch(*rows),
        )

    def test_unknown_schema_version_rejected(self, tmp_path, results):
        path = results["feature"].export_artifact().save(tmp_path / "future")
        sidecar = json.loads(path.with_suffix(".json").read_text())
        sidecar["schema_version"] = ARTIFACT_SCHEMA_VERSION + 1
        path.with_suffix(".json").write_text(json.dumps(sidecar))
        with pytest.raises(ValueError, match="unknown artifact schema"):
            ModelArtifact.load(path)

    def test_legacy_format_version_above_one_rejected(self, tmp_path, results):
        path = results["feature"].export_artifact().save(tmp_path / "odd")
        sidecar = json.loads(path.with_suffix(".json").read_text())
        del sidecar["schema_version"]
        sidecar["format_version"] = 9
        path.with_suffix(".json").write_text(json.dumps(sidecar))
        with pytest.raises(ValueError, match="newer than this library"):
            ModelArtifact.load(path)


# ----------------------------------------------------------------------
# health endpoint
# ----------------------------------------------------------------------
class TestHealthz:
    @pytest.mark.parametrize("form", ["multiplex", "feature"])
    def test_health_reports_formulation_and_schema(self, form, results):
        server = PredictionServer(results[form].export_artifact(), port=0)
        try:
            health = server.health()
        finally:
            server.shutdown()
        assert health["formulation"] == form
        assert health["schema_version"] == ARTIFACT_SCHEMA_VERSION
        if form == "multiplex":
            assert health["pool_rows"] == 140
        else:
            assert health["pool_rows"] is None

    def test_multiplex_serves_over_http(self, dataset, results):
        with PredictionServer(
            results["multiplex"].export_artifact(), port=0
        ) as server:
            payload = server.predict({
                "numerical": dataset.numerical[0].tolist(),
                "categorical": [10_000_000, -1],  # UNK device, missing merchant
            })
        assert payload["rows"] == 1
        assert abs(sum(payload["probabilities"][0]) - 1.0) < 1e-6
