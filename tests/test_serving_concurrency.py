"""Concurrency tests for the serving layer.

The serving stack's threading contract: any number of producer threads may
hit :class:`MicroBatcher.submit` / :class:`InferenceEngine.predict`
concurrently, and

* no response is lost, duplicated, or swapped between callers — every
  submit returns exactly its own row's probabilities;
* the LRU prediction cache stays consistent under contention and its
  entries are immutable (caller mutation raises instead of poisoning
  later hits);
* the ``stats`` counters account for every row exactly once.

The artifact under test is a small *untrained* instance artifact — latency
and correctness of the threading machinery do not depend on the weights,
and skipping training keeps the hammering tight.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.construction.rules import knn_graph
from repro.datasets import TabularPreprocessor, make_correlated_instances
from repro.gnn.networks import build_network
from repro.serving import InferenceEngine, MicroBatcher, ModelArtifact


@pytest.fixture(scope="module")
def artifact():
    dataset = make_correlated_instances(n=80, seed=0)
    prep = TabularPreprocessor(mode="onehot").fit(dataset)
    x = prep.transform_dataset(dataset)
    graph = knn_graph(x, k=5, metric="euclidean", y=dataset.y)
    model = build_network(
        "gcn", graph, 16, dataset.num_classes, np.random.default_rng(0),
        num_layers=2,
    )
    return ModelArtifact(
        formulation="instance",
        network="gcn",
        config={
            "hidden_dim": 16, "out_dim": dataset.num_classes, "k": 5,
            "metric": "euclidean", "num_layers": 2, "embed_dim": 8,
            "task": dataset.task,
        },
        state_dict=model.state_dict(),
        preprocessor=prep,
        pool_x=np.asarray(graph.x, dtype=np.float64),
        pool_edge_index=graph.edge_index.astype(np.int64),
    )


@pytest.fixture(scope="module")
def rows(artifact):
    rng = np.random.default_rng(42)
    return rng.normal(0.0, 1.0, (64, artifact.preprocessor.num_numerical_features))


@pytest.fixture(scope="module")
def reference(artifact, rows):
    """Single-threaded ground truth for every row in the universe."""
    return InferenceEngine(artifact, cache_size=0).predict_batch(rows)


class TestMicroBatcherHammering:
    def test_no_lost_duplicated_or_swapped_responses(self, artifact, rows, reference):
        n_threads, per_thread = 16, 24
        engine = InferenceEngine(artifact, cache_size=0)
        picks = np.random.default_rng(7).integers(
            0, rows.shape[0], (n_threads, per_thread)
        )
        with MicroBatcher(engine, max_batch_size=32, max_delay_ms=2.0) as batcher:
            def worker(thread_idx):
                out = []
                for row_idx in picks[thread_idx]:
                    out.append((row_idx, batcher.submit(rows[row_idx])))
                return out

            with ThreadPoolExecutor(n_threads) as pool:
                results = list(pool.map(worker, range(n_threads)))
            stats = dict(batcher.stats)

        total = n_threads * per_thread
        # Accurate counters: every row accounted for exactly once.
        assert stats["rows"] == total
        assert engine.stats["rows"] == total
        assert 1 <= stats["batches"] <= total
        assert stats["largest_batch"] <= 32
        # Every caller got exactly its own row's probabilities back.
        for thread_results in results:
            assert len(thread_results) == per_thread
            for row_idx, probs in thread_results:
                np.testing.assert_allclose(probs, reference[row_idx], atol=1e-12)

    def test_error_rows_fail_their_caller_only(self, artifact, rows):
        engine = InferenceEngine(artifact, cache_size=0)
        with MicroBatcher(engine, max_batch_size=8, max_delay_ms=2.0) as batcher:
            with pytest.raises(ValueError, match="numerical columns"):
                batcher.submit(np.zeros(rows.shape[1] + 3))
            # The batcher (and its consumer thread) survive the bad row.
            good = batcher.submit(rows[0])
            assert np.isfinite(good).all()

    def test_flush_drains_all_in_flight_rows(self, artifact, rows):
        engine = InferenceEngine(artifact, cache_size=0)
        results = [None] * 48
        # Batch window larger than the submit burst: all 48 rows are
        # queued (in flight, unanswered) when flush() is called.
        with MicroBatcher(engine, max_batch_size=64, max_delay_ms=250.0) as batcher:
            def worker(i):
                results[i] = batcher.submit(rows[i % rows.shape[0]])

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(48)
            ]
            for t in threads:
                t.start()
            deadline = time.time() + 5.0
            while batcher._pending < 48 and time.time() < deadline:
                time.sleep(0.001)
            assert batcher._pending == 48
            # flush() blocks until every submitted row has been answered.
            assert batcher.flush(timeout=30.0)
            assert batcher._pending == 0
            assert batcher.snapshot()["rows"] == 48
            for t in threads:
                t.join(timeout=10.0)
            assert all(
                r is not None and np.isfinite(r).all() for r in results
            )
            # Gauges read live state: drained means empty queue, nothing
            # in flight.
            registry = engine.registry
            assert registry.get("repro_batcher_queue_depth").value == 0
            assert registry.get("repro_batcher_in_flight").value == 0
        # flush() on an idle (even closed) batcher returns immediately.
        assert batcher.flush(timeout=0.1)

    def test_in_flight_gauge_counts_submitted_unanswered_rows(self, artifact, rows):
        engine = InferenceEngine(artifact, cache_size=0)
        # A huge delay + batch size keeps rows queued until the window
        # closes, long enough to observe them in flight.
        with MicroBatcher(engine, max_batch_size=64, max_delay_ms=200.0) as batcher:
            registry = engine.registry
            in_flight = registry.get("repro_batcher_in_flight")
            with ThreadPoolExecutor(4) as pool:
                futures = [
                    pool.submit(batcher.submit, rows[i]) for i in range(4)
                ]
                deadline = time.time() + 5.0
                while in_flight.value < 4 and time.time() < deadline:
                    time.sleep(0.001)
                assert in_flight.value == 4
                assert batcher.flush(timeout=30.0)
                assert in_flight.value == 0
                for f in futures:
                    assert np.isfinite(f.result()).all()
            # Queue-wait histogram saw every row, dominated by the delay
            # window the first row waited out.
            wait = registry.get("repro_batcher_queue_wait_seconds")
            assert wait.count == 4
            assert registry.get("repro_batcher_batch_size").count >= 1


class TestEngineCacheHammering:
    def test_lru_consistent_under_contention(self, artifact, rows, reference):
        engine = InferenceEngine(artifact, cache_size=8)
        n_threads, per_thread = 12, 60
        picks = np.random.default_rng(11).integers(
            0, 16, (n_threads, per_thread)  # 16 hot rows >> 8 cache slots
        )
        errors = []

        def worker(thread_idx):
            try:
                for row_idx in picks[thread_idx]:
                    probs = engine.predict(rows[row_idx])
                    np.testing.assert_allclose(
                        probs, reference[row_idx], atol=1e-12
                    )
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        total = n_threads * per_thread
        # Every row was either a cache hit or went through a forward pass.
        assert engine.stats["rows"] == total
        assert engine.stats["cache_hits"] + engine.stats["forward_rows"] == total
        assert engine.stats["cache_hits"] > 0
        assert len(engine._cache) <= 8

    def test_snapshot_consistent_while_predictions_run(self, artifact, rows):
        # engine.snapshot() takes the engine lock, under which every stat
        # mutation happens — so even mid-hammering, any snapshot satisfies
        # the accounting invariant: each row was a cache hit XOR a forward.
        engine = InferenceEngine(artifact, cache_size=8)
        picks = np.random.default_rng(17).integers(0, 16, (8, 40))
        stop = threading.Event()
        violations = []
        errors = []

        def worker(thread_idx):
            try:
                for row_idx in picks[thread_idx]:
                    engine.predict(rows[row_idx])
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        def observer():
            while not stop.is_set():
                snap = engine.snapshot()
                if snap["cache_hits"] + snap["forward_rows"] != snap["rows"]:
                    violations.append(snap)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        obs_thread = threading.Thread(target=observer)
        obs_thread.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        obs_thread.join()
        assert not errors
        assert not violations
        final = engine.snapshot()
        assert final["rows"] == 8 * 40
        assert final["cache_hits"] + final["forward_rows"] == final["rows"]

    def test_cache_entries_are_immutable(self, artifact, rows, reference):
        engine = InferenceEngine(artifact, cache_size=4)
        probs = engine.predict(rows[0])
        with pytest.raises(ValueError):
            probs[0] = 123.0
        # A second hit returns the uncorrupted entry.
        again = engine.predict(rows[0])
        assert engine.stats["cache_hits"] == 1
        np.testing.assert_allclose(again, reference[0], atol=1e-12)

    def test_mixed_single_and_batch_traffic(self, artifact, rows, reference):
        engine = InferenceEngine(artifact, cache_size=16)
        picks = np.random.default_rng(13).integers(0, rows.shape[0], (8, 10))
        errors = []

        def single(thread_idx):
            try:
                for row_idx in picks[thread_idx]:
                    np.testing.assert_allclose(
                        engine.predict(rows[row_idx]),
                        reference[row_idx],
                        atol=1e-12,
                    )
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def batch(thread_idx):
            try:
                idx = picks[thread_idx]
                np.testing.assert_allclose(
                    engine.predict_batch(rows[idx]), reference[idx], atol=1e-12
                )
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=single if i % 2 else batch, args=(i,))
            for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert engine.stats["rows"] == 8 * 10


class TestCompiledPlanBuffers:
    """Allocation stability and isolation of the compiled serve path.

    The compiled plan owns its scratch/output buffers: after the first
    request at a given batch size, repeated requests reuse the very same
    arrays (no allocation on the hot path), and a batch-size change
    triggers exactly one reallocation.  Buffers are per-engine — two
    engines serving the same artifact never share mutable state, which is
    what makes the engine-lock-per-engine threading model sound.
    """

    def test_output_buffer_stable_across_requests(self, artifact, rows):
        engine = InferenceEngine(artifact, cache_size=0)
        assert engine.compiled
        plan = engine._scorer._compiled.plan
        engine.predict(rows[0])
        assert plan.reallocations == 1
        out_id = id(plan.buffers[plan.output])
        buffer_ids = {name: id(buf) for name, buf in plan.buffers.items()}
        for i in range(1, 12):
            engine.predict(rows[i])
        assert plan.reallocations == 1  # warm path never reallocates
        assert id(plan.buffers[plan.output]) == out_id
        assert {name: id(buf) for name, buf in plan.buffers.items()} == buffer_ids

    def test_batch_size_change_reallocates_exactly_once(self, artifact, rows):
        engine = InferenceEngine(artifact, cache_size=0)
        plan = engine._scorer._compiled.plan
        engine.predict_batch(rows[:8])
        assert plan.reallocations == 1
        engine.predict_batch(rows[8:16])  # same batch size: reuse
        assert plan.reallocations == 1
        engine.predict_batch(rows[:16])  # new batch size: one realloc
        assert plan.reallocations == 2
        engine.predict_batch(rows[16:32])
        assert plan.reallocations == 2

    def test_concurrent_engines_do_not_share_plan_buffers(self, artifact, rows, reference):
        engines = [InferenceEngine(artifact, cache_size=0) for _ in range(2)]
        for engine in engines:
            engine.predict_batch(rows[:4])
        plans = [e._scorer._compiled.plan for e in engines]
        assert plans[0] is not plans[1]
        ids = [
            {id(buf) for buf in plan.buffers.values()} for plan in plans
        ]
        assert not ids[0] & ids[1], "engines share mutable plan buffers"
        # And hammering both concurrently stays correct.
        errors = []

        def worker(engine):
            try:
                for i in range(40):
                    np.testing.assert_allclose(
                        engine.predict(rows[i % 16]), reference[i % 16],
                        atol=1e-12,
                    )
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(engine,))
            for engine in engines for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
