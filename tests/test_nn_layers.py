"""Unit tests for the nn layer/module system."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, ops


RNG = np.random.default_rng(42)


def rng():
    return np.random.default_rng(7)


class TestModule:
    def test_parameters_discovered_recursively(self):
        mlp = nn.MLP(4, (8, 8), 2, rng())
        names = [n for n, _ in mlp.named_parameters()]
        assert len(names) == len(set(names))
        # 3 linear layers, each weight+bias
        assert len(mlp.parameters()) == 6

    def test_num_parameters_counts_elements(self):
        linear = nn.Linear(3, 5, rng())
        assert linear.num_parameters() == 3 * 5 + 5

    def test_state_dict_roundtrip(self):
        m1 = nn.MLP(4, (8,), 2, rng())
        m2 = nn.MLP(4, (8,), 2, np.random.default_rng(99))
        state = m1.state_dict()
        m2.load_state_dict(state)
        x = Tensor(RNG.normal(size=(5, 4)))
        np.testing.assert_allclose(m1(x).data, m2(x).data)

    def test_load_state_dict_rejects_mismatch(self):
        m = nn.Linear(3, 2, rng())
        with pytest.raises(KeyError):
            m.load_state_dict({"weight": np.zeros((3, 2))})
        good = m.state_dict()
        good["weight"] = np.zeros((4, 2))
        with pytest.raises(ValueError):
            m.load_state_dict(good)

    def test_train_eval_propagates(self):
        mlp = nn.MLP(4, (8,), 2, rng(), dropout=0.5)
        mlp.eval()
        assert all(not m.training for m in mlp.modules())
        mlp.train()
        assert all(m.training for m in mlp.modules())

    def test_zero_grad_clears(self):
        linear = nn.Linear(3, 2, rng())
        out = ops.sum(linear(Tensor(np.ones((2, 3)))))
        out.backward()
        assert linear.weight.grad is not None
        linear.zero_grad()
        assert linear.weight.grad is None

    def test_module_list_indexing(self):
        ml = nn.ModuleList([nn.Linear(2, 2, rng()) for _ in range(3)])
        assert len(ml) == 3
        assert ml[1] is list(ml)[1]
        assert len(ml.parameters()) == 6


class TestLinear:
    def test_output_shape_and_value(self):
        linear = nn.Linear(3, 4, rng())
        x = RNG.normal(size=(5, 3))
        out = linear(Tensor(x))
        assert out.shape == (5, 4)
        np.testing.assert_allclose(
            out.data, x @ linear.weight.data + linear.bias.data
        )

    def test_no_bias(self):
        linear = nn.Linear(3, 4, rng(), bias=False)
        assert linear.bias is None
        assert len(linear.parameters()) == 1

    def test_gradients_flow(self):
        linear = nn.Linear(3, 2, rng())
        out = ops.sum(linear(Tensor(np.ones((4, 3)))))
        out.backward()
        assert linear.weight.grad.shape == (3, 2)
        np.testing.assert_allclose(linear.bias.grad, np.full(2, 4.0))


class TestEmbedding:
    def test_lookup_shape(self):
        emb = nn.Embedding(10, 6, rng())
        out = emb(np.array([1, 3, 3]))
        assert out.shape == (3, 6)
        np.testing.assert_allclose(out.data[1], out.data[2])

    def test_multidim_index(self):
        emb = nn.Embedding(10, 4, rng())
        out = emb(np.array([[0, 1], [2, 3]]))
        assert out.shape == (2, 2, 4)

    def test_out_of_range_raises(self):
        emb = nn.Embedding(5, 4, rng())
        with pytest.raises(IndexError):
            emb(np.array([5]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_gradient_accumulates_on_duplicates(self):
        emb = nn.Embedding(4, 2, rng())
        out = ops.sum(emb(np.array([1, 1, 2])))
        out.backward()
        np.testing.assert_allclose(emb.weight.grad[1], [2.0, 2.0])
        np.testing.assert_allclose(emb.weight.grad[2], [1.0, 1.0])
        np.testing.assert_allclose(emb.weight.grad[0], [0.0, 0.0])


class TestDropout:
    def test_eval_mode_is_identity(self):
        drop = nn.Dropout(0.5, rng())
        drop.eval()
        x = Tensor(np.ones((10, 10)))
        np.testing.assert_allclose(drop(x).data, x.data)

    def test_train_mode_scales_survivors(self):
        drop = nn.Dropout(0.5, rng())
        out = drop(Tensor(np.ones((100, 100)))).data
        survivors = out[out > 0]
        np.testing.assert_allclose(survivors, 2.0)
        assert 0.3 < (out == 0).mean() < 0.7

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0, rng())


class TestNorms:
    def test_layernorm_normalizes_rows(self):
        ln = nn.LayerNorm(8)
        out = ln(Tensor(RNG.normal(2.0, 3.0, size=(5, 8)))).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-8)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_batchnorm_train_stats(self):
        bn = nn.BatchNorm1d(4)
        out = bn(Tensor(RNG.normal(5.0, 2.0, size=(200, 4)))).data
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-8)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_batchnorm_eval_uses_running_stats(self):
        bn = nn.BatchNorm1d(2, momentum=1.0)
        x = RNG.normal(3.0, 2.0, size=(100, 2))
        bn(Tensor(x))  # one training pass to set running stats
        bn.eval()
        out = bn(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-2)


class TestGRUCell:
    def test_output_shape(self):
        cell = nn.GRUCell(4, 6, rng())
        out = cell(Tensor(RNG.normal(size=(3, 4))), Tensor(np.zeros((3, 6))))
        assert out.shape == (3, 6)

    def test_update_gate_interpolates(self):
        # With tiny weights, update ~ 0.5 and output interpolates toward h.
        cell = nn.GRUCell(2, 2, rng())
        for param in cell.parameters():
            param.data[:] = 0.0
        h = Tensor(np.ones((1, 2)))
        out = cell(Tensor(np.zeros((1, 2))), h)
        np.testing.assert_allclose(out.data, 0.5 * np.ones((1, 2)))

    def test_gradients_reach_all_parameters(self):
        cell = nn.GRUCell(3, 3, rng())
        out = ops.sum(cell(Tensor(RNG.normal(size=(2, 3))), Tensor(RNG.normal(size=(2, 3)))))
        out.backward()
        for param in cell.parameters():
            assert param.grad is not None


class TestMLP:
    def test_no_hidden_is_linear(self):
        mlp = nn.MLP(4, (), 2, rng())
        assert len(list(mlp.net)) == 1

    def test_activation_names(self):
        for name in ("relu", "tanh", "sigmoid", "elu", "leaky_relu", "identity"):
            mlp = nn.MLP(4, (8,), 2, rng(), activation=name)
            assert mlp(Tensor(RNG.normal(size=(3, 4)))).shape == (3, 2)

    def test_unknown_activation_raises(self):
        with pytest.raises(ValueError):
            nn.MLP(4, (8,), 2, rng(), activation="swishy")

    def test_norm_options(self):
        for norm in ("layer", "batch"):
            mlp = nn.MLP(4, (8,), 2, rng(), norm=norm)
            assert mlp(Tensor(RNG.normal(size=(3, 4)))).shape == (3, 2)
