"""Compiled inference plans: lowering coverage, semantics, and fallbacks.

Parity at the engine level is fuzzed per registry cell in
``test_formulation_matrix.py``; this module tests the plan machinery
itself — the step vocabulary, buffer lifecycle, per-network lowering of
every conv substrate (untrained artifacts: lowering correctness does not
depend on the weights), and the best-effort contract (paths that cannot
be lowered fall back to the interpreted scorer, never error).
"""

import numpy as np
import pytest

from repro.construction.rules import knn_graph
from repro.datasets import TabularPreprocessor, make_correlated_instances
from repro.gnn.networks import build_network
from repro.serving import InferenceEngine, ModelArtifact
from repro.serving.compiled import (
    KERNELS,
    InferencePlan,
    PlanBuilder,
    PlanStep,
    UnsupportedPlanError,
    compile_instance,
)

NETWORKS = ("gcn", "sage", "gin", "gat", "gated")


def _instance_artifact(network, n=60, hidden=16, k=5, seed=0):
    dataset = make_correlated_instances(n=n, seed=seed)
    prep = TabularPreprocessor(mode="onehot").fit(dataset)
    x = prep.transform_dataset(dataset)
    graph = knn_graph(x, k=k, metric="euclidean", y=dataset.y)
    model = build_network(
        network, graph, hidden, dataset.num_classes,
        np.random.default_rng(seed), num_layers=2,
    )
    return ModelArtifact(
        formulation="instance",
        network=network,
        config={
            "hidden_dim": hidden, "out_dim": dataset.num_classes, "k": k,
            "metric": "euclidean", "num_layers": 2, "embed_dim": 8,
            "task": dataset.task,
        },
        state_dict=model.state_dict(),
        preprocessor=prep,
        pool_x=np.asarray(graph.x, dtype=np.float64),
        pool_edge_index=graph.edge_index.astype(np.int64),
    )


def _rows(artifact, n=12, seed=42):
    rng = np.random.default_rng(seed)
    return rng.normal(0.0, 1.0, (n, artifact.preprocessor.num_numerical_features))


# ---------------------------------------------------------------------------
# plan machinery
# ---------------------------------------------------------------------------
class TestPlanMachinery:
    def test_unknown_op_rejected_at_build_time(self):
        with pytest.raises(UnsupportedPlanError, match="unknown kernel op"):
            PlanStep("warp_drive", ("x",), "out", {})

    def test_plan_reuses_buffers_per_batch_size(self):
        builder = PlanBuilder()
        builder.feed("x")
        w = builder.const("w", np.eye(3))
        out = builder.buffer("out", lambda batch: (batch, 3))
        builder.step("linear", ("x", w), out)
        plan = builder.build(out)

        first = plan.run(4, {"x": np.ones((4, 3))})
        assert plan.reallocations == 1
        np.testing.assert_allclose(first, 1.0)
        second = plan.run(4, {"x": np.full((4, 3), 2.0)})
        assert second is first  # plan-owned output buffer, reused
        assert plan.reallocations == 1
        plan.run(2, {"x": np.ones((2, 3))})
        assert plan.reallocations == 2

    def test_views_are_windows_into_parent_buffers(self):
        builder = PlanBuilder()
        builder.feed("x")
        w = builder.const("w", np.eye(2))
        combined = builder.buffer("combined", lambda batch: (batch, 4))
        left = builder.view("left", combined, lambda batch: (slice(None), slice(0, 2)))
        right = builder.view(
            "right", combined, lambda batch: (slice(None), slice(2, 4))
        )
        builder.step("linear", ("x", w), left)
        builder.step("relu", ("x",), right)
        plan = builder.build(combined)
        got = plan.run(3, {"x": np.full((3, 2), -1.5)})
        np.testing.assert_allclose(got[:, :2], -1.5)
        np.testing.assert_allclose(got[:, 2:], 0.0)

    def test_every_step_op_is_in_the_kernel_vocabulary(self):
        # The backend contract: whatever a lowering emits, a swap-in
        # backend only needs to implement the KERNELS names.
        for network in NETWORKS:
            artifact = _instance_artifact(network)
            engine = InferenceEngine(artifact, cache_size=0)
            assert engine.compiled
            plan = engine._scorer._compiled.plan
            assert plan.ops, network
            assert set(plan.ops) <= set(KERNELS), network
            assert isinstance(plan, InferencePlan)


# ---------------------------------------------------------------------------
# per-network lowering parity (untrained weights, engine level)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("network", NETWORKS)
def test_network_lowering_matches_interpreted(network):
    artifact = _instance_artifact(network)
    rows = _rows(artifact)
    compiled = InferenceEngine(artifact, cache_size=0)
    interpreted = InferenceEngine(artifact, cache_size=0, compiled=False)
    assert compiled.compiled and not interpreted.compiled
    assert compiled.compile_ms > 0.0
    np.testing.assert_allclose(
        compiled.predict_batch(rows), interpreted.predict_batch(rows),
        atol=1e-8,
    )
    # Attach accounting identical: the plan consumes the same neighbors.
    assert compiled.stats["attach_edges"] == interpreted.stats["attach_edges"]


# ---------------------------------------------------------------------------
# fallback contract
# ---------------------------------------------------------------------------
class TestFallbacks:
    def test_full_graph_oracle_stays_interpreted(self):
        engine = InferenceEngine(
            _instance_artifact("gcn"), cache_size=0, incremental=False
        )
        assert not engine.compiled
        assert engine.compile_ms >= 0.0

    def test_compiled_false_opts_out(self):
        engine = InferenceEngine(
            _instance_artifact("gcn"), cache_size=0, compiled=False
        )
        assert not engine.compiled
        assert engine._scorer._compiled is None

    def test_unloweable_model_falls_back_to_interpreted(self):
        # compile_instance is best-effort: a model without a serve_plan
        # (e.g. a plug-in architecture) yields None, not an error.
        class Opaque:
            pass

        assert compile_instance(Opaque(), None, [], 5) is None

    def test_default_scorer_hook_keeps_plugins_interpreted(self):
        from repro.formulations.base import RowScorer

        class PluginScorer(RowScorer):
            def score(self, numerical, categorical):  # pragma: no cover
                return np.zeros((numerical.shape[0], 2))

        scorer = PluginScorer()
        assert scorer.compile_plan() is None
        assert scorer.enable_compiled() is False
        assert scorer._compiled is None

    def test_compiled_gauge_reports_serving_path(self):
        engine = InferenceEngine(_instance_artifact("gcn"))
        text = engine.registry.render_prometheus()
        assert 'repro_engine_compiled{formulation="instance"} 1' in text
        interpreted = InferenceEngine(_instance_artifact("gcn"), compiled=False)
        text = interpreted.registry.render_prometheus()
        assert 'repro_engine_compiled{formulation="instance"} 0' in text
