"""Pluggable ``PoolIndex`` backends: exact-scan parity, IVF recall, fallback.

The exact backend must stay bit-identical to the historical exhaustive
scan (it is the serving default and the parity oracle everything else is
measured against); the IVF backend trades an ``nprobe`` budget for
sub-linear scans and is held to seeded recall@k floors across every
supported measure.  The backend registry is the extension point a future
HNSW/LSH plug-in rides — covered by registering a fake backend.
"""

import numpy as np
import pytest

from repro.construction.retrieval import (
    INDEX_BACKENDS,
    ExactIndexBackend,
    IVFIndexBackend,
    PoolIndex,
    register_index_backend,
    retrieval_augmented_graph,
)
from repro.construction.rules import SIMILARITIES

MEASURES = ["cosine", "euclidean", "rbf", "heat", "inner", "pearson"]


def _clustered(rng, n, d=8, centers=12, spread=3.0):
    mu = rng.normal(0.0, spread, (centers, d))
    return mu[rng.integers(0, centers, n)] + rng.normal(0.0, 1.0, (n, d))


def _recall(approx, exact):
    k = exact.shape[1]
    hits = sum(
        len(set(approx[i]) & set(exact[i])) for i in range(exact.shape[0])
    )
    return hits / float(exact.shape[0] * k)


class TestExactBackendParity:
    @pytest.mark.parametrize("measure", MEASURES)
    def test_exact_backend_bit_identical_to_default(self, measure):
        rng = np.random.default_rng(0)
        pool = rng.normal(size=(60, 7))
        queries = rng.normal(size=(9, 7))
        default = PoolIndex(pool, measure)
        explicit = PoolIndex(pool, measure, backend="exact")
        np.testing.assert_array_equal(
            default.top_k(queries, 5), explicit.top_k(queries, 5)
        )
        np.testing.assert_array_equal(
            explicit.top_k(queries, 5), explicit.exact_top_k(queries, 5)
        )
        assert explicit.backend_name == "exact"
        assert not explicit.is_approximate

    def test_exclude_masks_self_matches(self):
        rng = np.random.default_rng(1)
        pool = rng.normal(size=(50, 5))
        exclude = np.arange(10)
        for backend in ("exact", "ivf"):
            index = PoolIndex(pool, "euclidean", backend=backend)
            neighbors = index.top_k(pool[:10], 4, exclude=exclude)
            assert not np.any(neighbors == exclude[:, None]), backend
        # without exclusion a pool row retrieves itself first
        index = PoolIndex(pool, "euclidean")
        assert np.array_equal(index.top_k(pool[:10], 1)[:, 0], exclude)

    def test_exclude_k_bound(self):
        index = PoolIndex(np.eye(4))
        with pytest.raises(ValueError):
            index.top_k(np.eye(4), 4, exclude=np.arange(4))


class TestIVFBackend:
    @pytest.mark.parametrize("measure", MEASURES)
    def test_recall_at_k_across_measures(self, measure):
        rng = np.random.default_rng(7)
        pool = _clustered(rng, 2000)
        queries = _clustered(rng, 32)
        exact = PoolIndex(pool, measure)
        ivf = PoolIndex(pool, measure, backend="ivf", nprobe=8)
        assert ivf.backend_name == "ivf" and ivf.is_approximate
        recall = _recall(ivf.top_k(queries, 10), exact.top_k(queries, 10))
        assert recall >= 0.9, f"{measure}: recall@10 {recall:.3f} < 0.9"

    def test_full_probe_matches_exact_sets(self):
        # nprobe >= nlist probes every cell: the candidate set is the whole
        # pool, so the neighbor *sets* must equal the exact scan's.
        rng = np.random.default_rng(3)
        pool = _clustered(rng, 400)
        queries = _clustered(rng, 16)
        ivf = PoolIndex(pool, "cosine", backend="ivf", nprobe=10_000)
        exact_sets = PoolIndex(pool, "cosine").top_k(queries, 8)
        assert _recall(ivf.top_k(queries, 8), exact_sets) == 1.0

    def test_widens_probe_when_candidates_short(self):
        # k close to the pool size forces probing past nprobe cells until
        # enough candidates accumulate — results must stay valid and unique.
        rng = np.random.default_rng(4)
        pool = _clustered(rng, 40, centers=20)
        ivf = PoolIndex(pool, "euclidean", backend="ivf", nprobe=1)
        neighbors = ivf.top_k(_clustered(rng, 5), 35)
        assert neighbors.shape == (5, 35)
        for row in neighbors:
            assert len(set(row.tolist())) == 35
            assert row.min() >= 0 and row.max() < 40

    def test_exotic_measure_falls_back_to_exact(self, monkeypatch):
        def weird(x, **kwargs):
            return -np.abs(x[:, None, 0] - x[None, :, 0])

        monkeypatch.setitem(SIMILARITIES, "weird", weird)
        rng = np.random.default_rng(5)
        pool = rng.normal(size=(30, 4))
        queries = rng.normal(size=(6, 4))
        ivf = PoolIndex(pool, "weird", backend="ivf")
        assert ivf.backend_name == "exact" and not ivf.is_approximate
        np.testing.assert_array_equal(
            ivf.top_k(queries, 5), ivf.exact_top_k(queries, 5)
        )

    def test_probe_stats_accumulate(self):
        rng = np.random.default_rng(6)
        ivf = PoolIndex(_clustered(rng, 500), "euclidean", backend="ivf")
        assert ivf.stats == {"queries": 0, "probed_cells": 0, "candidates": 0}
        ivf.top_k(_clustered(rng, 8), 5)
        assert ivf.stats["queries"] == 8
        assert ivf.stats["probed_cells"] >= 8
        assert ivf.stats["candidates"] >= 8 * 5

    def test_seeded_build_is_deterministic(self):
        rng = np.random.default_rng(8)
        pool = _clustered(rng, 1500)
        queries = _clustered(rng, 12)
        a = PoolIndex(pool, "euclidean", backend="ivf")
        b = PoolIndex(pool, "euclidean", backend="ivf")
        np.testing.assert_array_equal(a.top_k(queries, 10), b.top_k(queries, 10))


class TestBackendRegistry:
    def test_builtin_backends_registered(self):
        assert INDEX_BACKENDS["exact"] is ExactIndexBackend
        assert INDEX_BACKENDS["ivf"] is IVFIndexBackend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown index backend"):
            PoolIndex(np.eye(4), backend="hnsw")

    def test_plugin_backend_needs_no_pool_index_edits(self, monkeypatch):
        # The protocol a future HNSW/LSH backend implements: build(index)
        # returning self, top_k(queries, k, exclude) returning (B, k) ids.
        calls = {}

        class FirstK:
            name = "first_k"

            def build(self, index):
                calls["built"] = index
                return self

            def top_k(self, queries, k, exclude=None):
                n = np.asarray(queries).shape[0]
                return np.tile(np.arange(k, dtype=np.int64), (n, 1))

        monkeypatch.delitem(INDEX_BACKENDS, "first_k", raising=False)
        register_index_backend("first_k", FirstK)
        index = PoolIndex(np.eye(6), backend="first_k")
        assert calls["built"] is index
        assert index.backend_name == "first_k"
        np.testing.assert_array_equal(
            index.top_k(np.eye(6)[:2], 3),
            [[0, 1, 2], [0, 1, 2]],
        )
        del INDEX_BACKENDS["first_k"]


class TestRetrievalAugmentedGraphChunking:
    @pytest.mark.parametrize("measure", ["cosine", "euclidean", "rbf"])
    def test_chunked_build_matches_unchunked(self, measure):
        rng = np.random.default_rng(9)
        x = rng.normal(size=(150, 6))
        pool_mask = np.zeros(150, dtype=bool)
        pool_mask[:100] = True
        big = retrieval_augmented_graph(
            x, pool_mask, k=5, measure=measure, chunk_size=10_000
        )
        small = retrieval_augmented_graph(
            x, pool_mask, k=5, measure=measure, chunk_size=17
        )
        np.testing.assert_array_equal(big.edge_index, small.edge_index)

    def test_ivf_graph_build_close_to_exact(self):
        rng = np.random.default_rng(10)
        x = _clustered(rng, 400)
        pool_mask = np.zeros(400, dtype=bool)
        pool_mask[:300] = True
        exact = retrieval_augmented_graph(x, pool_mask, k=5, measure="cosine")
        ivf = retrieval_augmented_graph(
            x, pool_mask, k=5, measure="cosine", index="ivf", nprobe=10_000
        )
        # full probe -> identical neighbor sets -> identical symmetrized graph
        np.testing.assert_array_equal(exact.edge_index, ivf.edge_index)
