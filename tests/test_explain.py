"""Tests for the GNNExplainer module (Table 7, explanation preservation)."""

import numpy as np
import pytest

from repro import nn
from repro.construction.rules import knn_graph
from repro.datasets import make_correlated_instances, train_val_test_masks
from repro.explain import GNNExplainer, khop_edge_mask
from repro.gnn.networks import GCN
from repro.graph import Graph


def trained_setup(seed=0):
    ds = make_correlated_instances(n=120, cluster_strength=2.0, seed=seed)
    x = ds.to_matrix()
    graph = knn_graph(x, k=5, y=ds.y)
    model = GCN(graph, (16,), ds.num_classes, np.random.default_rng(seed))
    opt = nn.Adam(model.parameters(), lr=0.01)
    train, _, _ = train_val_test_masks(120, 0.6, 0.2, np.random.default_rng(seed),
                                       stratify=ds.y)
    for _ in range(60):
        loss = nn.cross_entropy(model(), ds.y, mask=train)
        opt.zero_grad()
        loss.backward()
        opt.step()
    model.eval()
    return ds, graph, model


class TestKHopMask:
    def test_one_hop_contains_direct_edges(self):
        edges = np.array([[0, 1, 2, 3], [1, 2, 3, 0]])
        graph = Graph(4, edges)
        mask = khop_edge_mask(graph, 0, hops=1)
        # edges touching node 0 are (0,1) and (3,0); after one hop nodes
        # {0,1,3} are reached so edge (1,2) and (2,3) may appear at hop 2 only
        assert mask[0] and mask[3]

    def test_hops_grow_coverage(self):
        ds, graph, _ = trained_setup()
        one = khop_edge_mask(graph, 0, 1).sum()
        two = khop_edge_mask(graph, 0, 2).sum()
        assert two >= one


class TestGNNExplainer:
    def test_explanation_fields(self):
        ds, graph, model = trained_setup()
        explainer = GNNExplainer(model, graph, epochs=30)
        explanation = explainer.explain(0, hops=2)
        assert explanation.node == 0
        assert explanation.edge_index.shape[0] == 2
        assert explanation.edge_importance.shape == (explanation.edge_index.shape[1],)
        assert np.all((explanation.edge_importance >= 0)
                      & (explanation.edge_importance <= 1))
        assert 0 <= explanation.predicted_class < ds.num_classes

    def test_mask_becomes_selective(self):
        ds, graph, model = trained_setup()
        explainer = GNNExplainer(model, graph, epochs=60, sparsity_weight=0.2)
        explanation = explainer.explain(3, hops=2)
        # sparsity pressure should push some edges clearly below others
        spread = explanation.edge_importance.max() - explanation.edge_importance.min()
        assert spread > 0.05

    def test_top_edges_sorted(self):
        ds, graph, model = trained_setup()
        explanation = GNNExplainer(model, graph, epochs=20).explain(5)
        top = explanation.top_edges(3)
        weights = [w for _, _, w in top]
        assert weights == sorted(weights, reverse=True)

    def test_requires_features(self):
        edges = np.array([[0, 1], [1, 0]])
        bare = Graph(2, edges)
        with pytest.raises(ValueError):
            GNNExplainer(object(), bare)

    def test_fidelity_check_runs(self):
        ds, graph, model = trained_setup()
        explainer = GNNExplainer(model, graph, epochs=40)
        explanation = explainer.explain(7, hops=2)
        # With a permissive threshold nothing is dropped -> prediction kept.
        assert explainer.fidelity(explanation, threshold=0.0) is True
