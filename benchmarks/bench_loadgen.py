"""Open-loop load-generator bench for the multi-process serving stack.

Measures aggregate serving throughput of :class:`repro.serving.ScaleOutServer`
(the ``--workers N`` deployment) at worker counts 1 / 2 / 4, driving an
**open-loop** arrival schedule at a fixed target QPS chosen well above the
fleet's capacity.  Because arrivals do not wait for completions, the achieved
rate under saturation is the fleet's capacity — so the recorded rows/sec
curve is a direct scaling measurement.  Each request carries a
``BATCH_ROWS``-row batch so worker-side scoring (not HTTP parsing on the
front door) dominates service time.

Recorded per worker count: achieved rows/sec, client-observed p50/p95/p99
latency (queueing included — honest open-loop numbers), the shared target
QPS, and ``usable_cores``.  Rows are merged into
``benchmarks/results/BENCH_serving.json`` under ``loadgen_scaling``
(preserving the keys owned by ``bench_serving_throughput``).

Scaling bar: >= 2x aggregate rows/sec at 4 workers vs 1.  Forked workers
cannot scale past the cores the container actually grants, so the bar is
asserted only when ``usable_cores >= 4`` (CI runners qualify); on smaller
containers the honest numbers are still recorded for the trajectory.
"""

import json
import os
import queue
import tempfile
import threading
import time
from http.client import HTTPConnection

import numpy as np

from _harness import RESULTS_DIR, once, record_table

from repro.datasets import make_correlated_instances
from repro.pipeline import run_pipeline
from repro.serving import ScaleOutServer

WORKER_COUNTS = (1, 2, 4)
POOL_ROWS = 300
#: rows per request: big enough that engine scoring dominates per-request
#: cost, small enough that queueing latency stays readable.
BATCH_ROWS = 16
N_REQUESTS = 96
#: client sender threads — bounds concurrency so a saturated fleet queues
#: requests instead of the client spawning unbounded sockets.
SENDERS = 16
CALIBRATE_REQUESTS = 12
ROWS = []
STATE = {}


def _setup():
    if STATE:
        return
    dataset = make_correlated_instances(n=POOL_ROWS, seed=0)
    result = run_pipeline(
        dataset, formulation="instance", network="gcn", max_epochs=30, seed=0
    )
    tmpdir = tempfile.mkdtemp(prefix="bench-loadgen-")
    result.export_artifact().save(os.path.join(tmpdir, "model"))
    STATE["artifact_path"] = os.path.join(tmpdir, "model.npz")
    rng = np.random.default_rng(1)
    picks = rng.integers(0, POOL_ROWS, N_REQUESTS * BATCH_ROWS)
    rows = dataset.numerical[picks] + rng.normal(
        0.0, 0.05, (N_REQUESTS * BATCH_ROWS, dataset.num_numerical)
    )
    bodies = []
    for i in range(N_REQUESTS):
        batch = rows[i * BATCH_ROWS : (i + 1) * BATCH_ROWS]
        bodies.append(
            json.dumps(
                {"rows": [{"numerical": r.tolist()} for r in batch]}
            ).encode()
        )
    STATE["bodies"] = bodies


def _usable_cores():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _post(conn, body):
    conn.request(
        "POST", "/predict", body=body,
        headers={"Content-Type": "application/json"},
    )
    response = conn.getresponse()
    payload = response.read()
    return response.status, payload


def _calibrate(server):
    """Closed-loop service-rate estimate used to pick the open-loop target."""
    conn = HTTPConnection(server.host, server.port, timeout=60)
    try:
        _post(conn, STATE["bodies"][0])  # warm caches / first-touch mmap
        start = time.perf_counter()
        for i in range(CALIBRATE_REQUESTS):
            status, _ = _post(conn, STATE["bodies"][i % len(STATE["bodies"])])
            assert status == 200
        return CALIBRATE_REQUESTS / (time.perf_counter() - start)
    finally:
        conn.close()


def _run_open_loop(server, target_qps):
    """Drive ``N_REQUESTS`` at ``target_qps`` arrivals; return the stats row."""
    arrivals = queue.Queue()
    latencies = []
    errors = []
    lock = threading.Lock()
    start = time.perf_counter() + 0.05
    for i, body in enumerate(STATE["bodies"]):
        arrivals.put((start + i / target_qps, body))

    def sender():
        conn = HTTPConnection(server.host, server.port, timeout=60)
        try:
            while True:
                try:
                    due, body = arrivals.get_nowait()
                except queue.Empty:
                    return
                delay = due - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                sent = time.perf_counter()
                try:
                    status, payload = _post(conn, body)
                except OSError as exc:  # pragma: no cover - network failure
                    with lock:
                        errors.append(repr(exc))
                    conn.close()
                    conn = HTTPConnection(server.host, server.port, timeout=60)
                    continue
                elapsed = time.perf_counter() - sent
                with lock:
                    if status != 200:
                        errors.append(payload[:200].decode(errors="replace"))
                    else:
                        latencies.append(elapsed)
        finally:
            conn.close()

    threads = [threading.Thread(target=sender) for _ in range(SENDERS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    done = time.perf_counter()
    assert not errors, f"load-gen saw non-200 responses: {errors[:3]}"
    assert len(latencies) == N_REQUESTS
    lat_ms = np.sort(np.asarray(latencies)) * 1e3
    elapsed = done - start
    return {
        "rows_per_sec": float(N_REQUESTS * BATCH_ROWS / elapsed),
        "requests_per_sec": float(N_REQUESTS / elapsed),
        "p50_ms": float(np.percentile(lat_ms, 50)),
        "p95_ms": float(np.percentile(lat_ms, 95)),
        "p99_ms": float(np.percentile(lat_ms, 99)),
        "target_qps": float(target_qps),
    }


def _bench_workers(n_workers):
    _setup()
    with ScaleOutServer(
        STATE["artifact_path"], workers=n_workers, port=0,
        access_log=False, boot_timeout=180.0,
    ) as server:
        if "target_qps" not in STATE:
            # Calibrate once, on the first (1-worker) fleet: an open-loop
            # target far above any fleet's capacity keeps every config
            # saturated, so achieved rows/sec == capacity at that scale.
            STATE["target_qps"] = max(50.0, 8.0 * _calibrate(server))
        else:
            _calibrate(server)  # warm the new fleet's caches identically
        stats = _run_open_loop(server, STATE["target_qps"])
    stats["workers"] = n_workers
    stats["usable_cores"] = _usable_cores()
    ROWS.append(stats)
    return stats


def test_loadgen_workers_1(benchmark):
    once(benchmark, lambda: _bench_workers(1))


def test_loadgen_workers_2(benchmark):
    once(benchmark, lambda: _bench_workers(2))


def test_loadgen_workers_4(benchmark):
    once(benchmark, lambda: _bench_workers(4))


def test_zzz_render_loadgen(benchmark):
    def render():
        assert len(ROWS) == len(WORKER_COUNTS)
        by_workers = {row["workers"]: row for row in ROWS}
        cores = ROWS[0]["usable_cores"]
        speedup = (
            by_workers[4]["rows_per_sec"] / by_workers[1]["rows_per_sec"]
        )
        text = record_table(
            "BENCH_loadgen",
            "Open-loop serving scale-out (ScaleOutServer, "
            f"{BATCH_ROWS} rows/request, {cores} usable cores)",
            [
                "workers", "rows/sec", "req/sec",
                "p50 ms", "p95 ms", "p99 ms",
            ],
            [
                (
                    w,
                    by_workers[w]["rows_per_sec"],
                    by_workers[w]["requests_per_sec"],
                    by_workers[w]["p50_ms"],
                    by_workers[w]["p95_ms"],
                    by_workers[w]["p99_ms"],
                )
                for w in WORKER_COUNTS
            ],
            note=(
                f"open-loop target {ROWS[0]['target_qps']:.0f} req/s "
                f"(saturating); 4-vs-1 worker aggregate throughput "
                f"{speedup:.2f}x; >= 2x bar "
                + ("enforced" if cores >= 4 else
                   f"recorded only (needs >= 4 cores, have {cores})")
            ),
        )
        RESULTS_DIR.mkdir(exist_ok=True)
        out = RESULTS_DIR / "BENCH_serving.json"
        merged = {}
        if out.exists():
            try:
                merged = json.loads(out.read_text())
            except (ValueError, OSError):
                merged = {}
        merged["loadgen_scaling"] = ROWS
        out.write_text(json.dumps(merged, indent=2) + "\n")
        if cores >= 4:
            assert speedup >= 2.0, (
                f"4-worker aggregate throughput {speedup:.2f}x of 1-worker "
                f"is below the 2x bar ({cores} usable cores)"
            )
        return text

    once(benchmark, render)
