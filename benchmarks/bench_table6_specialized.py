"""Table 6 — specialized GNN designs, as measured ablations.

The paper's Table 6 lists key designs of specialized tabular GNNs.  For
each design implemented here, this benchmark runs the model *with and
without* the design on data that rewards it, so the table reports the
design's measured contribution rather than a citation.
"""

import numpy as np
from _harness import once, record_table

from repro import nn
from repro.construction.intrinsic import multiplex_from_dataset
from repro.construction.rules import knn_edges, knn_graph
from repro.datasets import make_anomaly, make_fraud, train_val_test_masks
from repro.gnn.attention import GATConv
from repro.metrics import accuracy, roc_auc
from repro.models import FATE, LUNAR, TabGNN
from repro.tensor import Tensor
from repro.training.trainer import Trainer

EPOCHS = 100
ROWS = []


def test_distance_preservation_lunar(benchmark):
    """LUNAR's learned distance messages vs the fixed mean-distance score."""
    ds = make_anomaly(n_inliers=300, n_outliers=30, local_fraction=0.8, seed=0)
    x = ds.to_matrix()

    def run():
        model = LUNAR(k=10, seed=0, epochs=EPOCHS).fit(x)
        return roc_auc(ds.y, model.score()), roc_auc(ds.y, model.baseline_knn_score())

    learned, fixed = once(benchmark, run)
    ROWS.append(("Distance preservation", "LUNAR", "learned distance net", learned,
                 "fixed mean distance", fixed))
    assert learned > 0.8


def test_multiplex_attention_fusion(benchmark):
    """TabGNN's relation attention vs uniform mean fusion."""
    ds = make_fraud(n=400, camouflage=0.25, seed=0)  # moderately noisy relations
    rng = np.random.default_rng(0)
    train, val, test = train_val_test_masks(400, 0.6, 0.2, rng, stratify=ds.y)
    graph = multiplex_from_dataset(ds)

    def run():
        out = {}
        for fusion in ("attention", "mean"):
            model = TabGNN(graph, 32, 2, np.random.default_rng(0), fusion=fusion)
            opt = nn.Adam(model.parameters(), lr=0.01, weight_decay=5e-4)
            trainer = Trainer(model, opt, max_epochs=EPOCHS, patience=25)
            trainer.fit(
                lambda: nn.cross_entropy(model(), ds.y, mask=train),
                lambda: accuracy(ds.y[val], model().data.argmax(1)[val]),
            )
            logits = model().data
            out[fusion] = roc_auc(ds.y[test], (logits[:, 1] - logits[:, 0])[test])
        return out

    results = once(benchmark, run)
    ROWS.append(("Feature-relation modeling", "TabGNN", "attention fusion",
                 results["attention"], "mean fusion", results["mean"]))


def test_edge_feature_attention(benchmark):
    """GAT with per-edge distance features vs plain GAT (LUNAR-style design)."""
    ds = make_anomaly(n_inliers=250, n_outliers=25, seed=1)
    x = ds.to_matrix()
    rng = np.random.default_rng(0)
    train, val, test = train_val_test_masks(275, 0.6, 0.2, rng, stratify=ds.y)

    edge_index, distances = knn_edges(x, k=8, include_distances=True)
    edge_feat = Tensor((distances / distances.max()).reshape(-1, 1))

    def build(with_edges):
        layer_rng = np.random.default_rng(0)
        conv1 = GATConv(x.shape[1], 16, layer_rng, num_heads=2,
                        edge_dim=1 if with_edges else None)
        conv2 = GATConv(16, 2, layer_rng, num_heads=2)
        return conv1, conv2

    def run():
        from repro.tensor import ops

        out = {}
        for with_edges in (True, False):
            conv1, conv2 = build(with_edges)
            params = conv1.parameters() + conv2.parameters()
            opt = nn.Adam(params, lr=0.01)

            def forward():
                h = ops.elu(conv1(Tensor(x), edge_index,
                                  edge_feat if with_edges else None))
                return conv2(h, edge_index)

            for _ in range(EPOCHS):
                loss = nn.cross_entropy(forward(), ds.y, mask=train)
                opt.zero_grad()
                loss.backward()
                opt.step()
            logits = forward().data
            out[with_edges] = roc_auc(ds.y[test], (logits[:, 1] - logits[:, 0])[test])
        return out

    results = once(benchmark, run)
    ROWS.append(("Distance-aware attention", "GAT+edge feats",
                 "with distances", results[True], "without", results[False]))


def test_neighbor_sampling_care(benchmark):
    """CARE-GNN's similarity filtering vs unfiltered aggregation under heavy
    camouflage — the regime the design targets."""
    from repro.models import CAREGNN

    ds = make_fraud(n=500, camouflage=0.7, feature_signal=0.4, seed=0)
    rng = np.random.default_rng(0)
    train, val, test = train_val_test_masks(500, 0.6, 0.2, rng, stratify=ds.y)
    graph = multiplex_from_dataset(ds)
    counts = np.bincount(ds.y[train], minlength=2).astype(np.float64)
    weights = counts.sum() / (2 * np.maximum(counts, 1.0))

    def run():
        out = {}
        for filtered in (True, False):
            model = CAREGNN(graph, 32, 2, np.random.default_rng(0), rho=0.3,
                            filter_neighbors=filtered)
            opt = nn.Adam(model.parameters(), lr=0.01, weight_decay=5e-4)
            loss_rng = np.random.default_rng(1)
            for _ in range(EPOCHS + 20):
                loss = model.loss(ds.y, train, class_weights=weights, rng=loss_rng)
                opt.zero_grad()
                loss.backward()
                opt.step()
            model.eval()
            logits = model().data
            out[filtered] = roc_auc(ds.y[test], (logits[:, 1] - logits[:, 0])[test])
        return out

    results = once(benchmark, run)
    ROWS.append(("Neighbor sampling", "CARE-GNN", "similarity filter (rho=0.3)",
                 results[True], "no filtering", results[False]))
    assert results[True] > results[False]


def test_label_adjustment_pet(benchmark):
    """PET's propagated label channel vs the same retrieval graph without it."""
    from repro.models import PET

    from repro.datasets import make_correlated_instances

    data = make_correlated_instances(n=300, cluster_strength=1.0, flip_y=0.0, seed=1)
    x = data.to_matrix()
    rng = np.random.default_rng(0)
    train, val, test = train_val_test_masks(300, 0.3, 0.15, rng, stratify=data.y)

    def run():
        out = {}
        for use_labels in (True, False):
            model = PET(x, data.y, train, data.num_classes,
                        np.random.default_rng(0), k=15,
                        use_label_channel=use_labels)
            opt = nn.Adam(model.parameters(), lr=0.01, weight_decay=5e-4)
            trainer = Trainer(model, opt, max_epochs=EPOCHS + 50, patience=35)
            loss_rng = np.random.default_rng(1)
            trainer.fit(
                lambda: model.loss(data.y, train, label_dropout=0.3, rng=loss_rng),
                lambda: accuracy(data.y[val], model().data.argmax(1)[val]),
            )
            out[use_labels] = accuracy(data.y[test], model().data.argmax(1)[test])
        return out

    results = once(benchmark, run)
    ROWS.append(("Label adjustment", "PET", "label channel propagated",
                 results[True], "features only", results[False]))
    assert results[True] > results[False]


def test_permutation_invariance_fate(benchmark):
    """FATE's aggregation is invariant to feature order and extends to new columns."""
    rng = np.random.default_rng(0)
    n, d = 300, 8
    x = rng.normal(size=(n, d))
    coef = rng.normal(size=d)
    y = (x @ coef > 0).astype(np.int64)
    train = np.zeros(n, dtype=bool)
    train[:200] = True
    test = ~train

    def run():
        model = FATE(d, 2, np.random.default_rng(0))
        opt = nn.Adam(model.parameters(), lr=0.01)
        for _ in range(EPOCHS):
            loss = nn.cross_entropy(model(x[train]), y[train])
            opt.zero_grad()
            loss.backward()
            opt.step()
        base = accuracy(y[test], model(x[test]).data.argmax(1))
        # permute feature order at test time
        perm = np.random.default_rng(1).permutation(d)
        permuted = accuracy(
            y[test], model(x[test][:, perm], feature_index=perm).data.argmax(1)
        )
        # append two unseen noise columns at test time
        extended = np.concatenate(
            [x[test], np.random.default_rng(2).normal(size=(test.sum(), 2))], axis=1
        )
        index = np.concatenate([np.arange(d), [d, d + 1]])
        extrapolated = accuracy(
            y[test], model(extended, feature_index=index).data.argmax(1)
        )
        return base, permuted, extrapolated

    base, permuted, extrapolated = once(benchmark, run)
    ROWS.append(("Permutation invariance", "FATE", "permuted columns", permuted,
                 "base / +2 unseen cols", f"{base:.3f} / {extrapolated:.3f}"))
    assert permuted == base  # exact invariance
    assert extrapolated > 0.6  # graceful extrapolation


def test_zzz_render_table6(benchmark):
    def render():
        return record_table(
            "table6_specialized",
            "Table 6 (reproduced): specialized designs as measured ablations",
            ["key design", "model", "variant A", "A", "variant B", "B"],
            ROWS,
            note=("Each row ablates one Table 6 design on data that rewards"
                  " it; A carries the design, B removes it."),
        )

    once(benchmark, render)
    assert len(ROWS) >= 6
