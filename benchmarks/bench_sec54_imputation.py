"""Sec. 5.4 — missing-data imputation application, reproduced.

GRAPE (bipartite edge prediction) vs classical imputers across the three
missingness mechanisms, plus the instance-init ablation (the survey-faithful
constant init vs the IGRM-style feature init).
"""

from _harness import once, record_table

from repro.applications import run_imputation_benchmark
from repro.datasets import make_correlated_instances

ROWS = []
EPOCHS = 250
METHODS = ("mean", "median", "knn", "iterative", "grape")


def _dataset():
    return make_correlated_instances(
        n=220, num_features=12, noise_features=2, cluster_strength=2.5, seed=0
    )


def _run(mechanism, benchmark, **kwargs):
    ds = _dataset()
    results = once(
        benchmark,
        lambda: run_imputation_benchmark(
            ds, rate=0.3, mechanism=mechanism, epochs=EPOCHS, seed=0, **kwargs
        ),
    )
    for method, rmse in results.items():
        ROWS.append((mechanism, method, rmse))
    return results


def test_mcar(benchmark):
    results = _run("mcar", benchmark)
    assert results["grape"] < results["mean"]


def test_mar(benchmark):
    results = _run("mar", benchmark)
    assert results["grape"] < results["mean"]


def test_mnar(benchmark):
    results = _run("mnar", benchmark)
    assert results["grape"] < results["mean"]
    # MNAR is the hardest mechanism for everyone.
    mcar_grape = next(r[2] for r in ROWS if r[0] == "mcar" and r[1] == "grape")
    assert results["grape"] >= mcar_grape - 0.05


def test_grape_init_ablation(benchmark):
    ds = _dataset()
    results = once(
        benchmark,
        lambda: run_imputation_benchmark(
            ds, rate=0.3, mechanism="mcar", epochs=EPOCHS, seed=0,
            include_grape_ones=True,
        ),
    )
    ROWS.append(("mcar (ablation)", "grape feature-init", results["grape"]))
    ROWS.append(("mcar (ablation)", "grape ones-init", results["grape_ones_init"]))
    assert results["grape"] <= results["grape_ones_init"] + 0.02


def test_zzz_render_sec54(benchmark):
    def render():
        return record_table(
            "sec54_imputation",
            "Sec. 5.4 (reproduced): imputation RMSE by missingness mechanism",
            ["mechanism", "method", "RMSE (z-scored)"],
            ROWS,
            note=("Expected shape: GRAPE beats mean/median everywhere and is"
                  " competitive with kNN/iterative; all methods degrade under"
                  " MNAR; feature-init GRAPE beats the constant-init ablation."),
        )

    once(benchmark, render)
    assert len(ROWS) >= 17
