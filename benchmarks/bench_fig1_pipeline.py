"""Figure 1 — the general GNN4TDL pipeline, executed and timed per phase.

The paper's Figure 1 diagrams the four phases (graph formulation, graph
construction, representation learning, training plans).  This benchmark
runs the complete pipeline for each formulation on the same mixed tabular
dataset, timing each phase — the figure rendered as a measured table.
"""

from _harness import once, record_table

from repro.datasets import make_fraud
from repro.pipeline import FORMULATIONS, run_pipeline

ROWS = []
EPOCHS = 80


def _run(formulation):
    ds = make_fraud(n=400, seed=0)
    result = run_pipeline(ds, formulation=formulation, max_epochs=EPOCHS, seed=0)
    ROWS.append((
        formulation,
        result.network if formulation == "instance" else "(native)",
        result.num_parameters,
        result.phase_seconds["construction"],
        result.phase_seconds["training"],
        result.phase_seconds["inference"],
        result.test_accuracy,
        result.test_macro_f1,
    ))
    return result.test_accuracy


def test_pipeline_instance(benchmark):
    assert once(benchmark, lambda: _run("instance")) > 0.6


def test_pipeline_feature(benchmark):
    assert once(benchmark, lambda: _run("feature")) > 0.6


def test_pipeline_multiplex(benchmark):
    assert once(benchmark, lambda: _run("multiplex")) > 0.6


def test_pipeline_hetero(benchmark):
    assert once(benchmark, lambda: _run("hetero")) > 0.6


def test_pipeline_hypergraph(benchmark):
    assert once(benchmark, lambda: _run("hypergraph")) > 0.6


def test_zzz_render_fig1(benchmark):
    def render():
        return record_table(
            "fig1_pipeline",
            "Figure 1 (reproduced): the 4-phase pipeline, per formulation",
            ["formulation", "network", "params", "construct (s)", "train (s)",
             "infer (s)", "test acc", "macro F1"],
            ROWS,
            note=("Phases: Graph Formulation+Construction -> Representation"
                  " Learning -> Training Plans -> Prediction (Fig. 1)."),
        )

    once(benchmark, render)
    assert len(ROWS) == len(FORMULATIONS)
