"""Figure 2 — the GNN4TDL taxonomy, verified leaf by leaf.

The paper's Figure 2 organizes the field along four axes.  This benchmark
renders the same tree from the library's registry and *verifies* every leaf
resolves to working code — coverage as an executable artifact.
"""

import pathlib

from _harness import RESULTS_DIR, once

from repro import registry


def test_taxonomy_tree_renders_and_resolves(benchmark):
    def run():
        resolved = registry.verify_all_leaves()
        tree = registry.taxonomy_tree()
        return resolved, tree

    resolved, tree = once(benchmark, run)
    assert all(resolved.values())

    header = (
        "Figure 2 (reproduced): the GNN4TDL taxonomy as implemented\n"
        "===========================================================\n"
        f"{len(resolved)} leaves across {len(registry.phases())} phases — "
        "all instantiable.\n"
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "fig2_taxonomy.txt").write_text(header + "\n" + tree + "\n")
    print("\n" + header + "\n" + tree)


def test_each_phase_has_multiple_categories(benchmark):
    grouped = once(benchmark, registry.leaves_by_phase)
    for phase, leaves in grouped.items():
        categories = {leaf.category for leaf in leaves}
        assert len(categories) >= 2, f"phase {phase} has a single category"


def test_survey_examples_cited_on_every_leaf(benchmark):
    leaves = once(benchmark, lambda: registry.TAXONOMY)
    for leaf in leaves:
        assert leaf.survey_examples, f"{leaf.name} missing survey citations"
