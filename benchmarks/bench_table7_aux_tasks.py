"""Table 7 — auxiliary learning tasks, measured at low label budget.

The paper's Table 7 catalogues auxiliary tasks added to the main
supervised objective.  This benchmark trains the same GCN on the same
low-label problem with each auxiliary task switched on, which is the regime
where self-supervision is claimed to pay (Sec. 2.5d).
"""

import numpy as np
from _harness import once, record_table

from repro import nn
from repro.construction.rules import knn_graph
from repro.datasets import make_correlated_instances, train_val_test_masks
from repro.gnn.networks import GCN
from repro.metrics import accuracy
from repro.tensor import Tensor, ops
from repro.training import (
    ContrastiveTask,
    DenoisingAutoencoderTask,
    FeatureReconstructionTask,
    Trainer,
    smoothness_regularizer,
)

EPOCHS = 120
LABEL_FRACTION = 0.08
ROWS = []


def _setup(seed=0):
    ds = make_correlated_instances(n=300, cluster_strength=1.2, flip_y=0.05, seed=seed)
    x = ds.to_matrix()
    rng = np.random.default_rng(seed)
    train, val, test = train_val_test_masks(
        300, LABEL_FRACTION, 0.12, rng, stratify=ds.y
    )
    graph = knn_graph(x, k=8, y=ds.y)
    return ds, x, graph, train, val, test


def _train_with_aux(aux_name, seed=0):
    ds, x, graph, train, val, test = _setup(seed)
    rng = np.random.default_rng(seed)
    model = GCN(graph, (32,), ds.num_classes, rng)
    aux = None
    weight = 1.0
    if aux_name == "feature reconstruction":
        aux = FeatureReconstructionTask(32, x.shape[1], rng, target=x)
        aux_loss = lambda: aux.loss(model.embed())  # noqa: E731
    elif aux_name == "denoising autoencoder":
        aux = DenoisingAutoencoderTask(32, x, rng, mask_rate=0.2)
        aux_loss = lambda: aux.loss(model.embed)  # noqa: E731
    elif aux_name == "contrastive":
        aux = ContrastiveTask(32, x, rng, mask_rate=0.2)
        aux_loss = lambda: aux.loss(model.embed)  # noqa: E731
        weight = 0.1
    elif aux_name == "graph smoothness":
        aux_loss = lambda: smoothness_regularizer(model.embed(), graph.edge_index)  # noqa: E731
        weight = 0.05
    else:
        aux_loss = None

    params = list(model.parameters())
    if aux is not None:
        params += list(aux.parameters())
    opt = nn.Adam(params, lr=0.01, weight_decay=5e-4)
    trainer = Trainer(model, opt, max_epochs=EPOCHS, patience=30)

    def loss_fn():
        loss = nn.cross_entropy(model(), ds.y, mask=train)
        if aux_loss is not None:
            loss = ops.add(loss, ops.mul(Tensor(weight), aux_loss()))
        return loss

    trainer.fit(
        loss_fn,
        lambda: accuracy(ds.y[val], model().data.argmax(1)[val]),
    )
    return accuracy(ds.y[test], model().data.argmax(1)[test])


def _mean_over_seeds(aux_name, seeds=(0, 1, 2)):
    return float(np.mean([_train_with_aux(aux_name, s) for s in seeds]))


def test_main_task_only(benchmark):
    acc = once(benchmark, lambda: _mean_over_seeds("none"))
    ROWS.append(("(main task only)", "—", acc))


def test_feature_reconstruction(benchmark):
    acc = once(benchmark, lambda: _mean_over_seeds("feature reconstruction"))
    ROWS.append(("feature reconstruction", "GINN, GRAPE, EGG-GAE, ALLG", acc))


def test_denoising_autoencoder(benchmark):
    acc = once(benchmark, lambda: _mean_over_seeds("denoising autoencoder"))
    ROWS.append(("denoising autoencoder", "SLAPS, HES-GSL", acc))


def test_contrastive(benchmark):
    acc = once(benchmark, lambda: _mean_over_seeds("contrastive"))
    ROWS.append(("contrastive learning", "SUBLIME, TabGSL, SSGNet", acc))


def test_graph_smoothness(benchmark):
    acc = once(benchmark, lambda: _mean_over_seeds("graph smoothness"))
    ROWS.append(("graph regularization", "IDGL, GraphFC, ALLG", acc))


def test_zzz_render_table7(benchmark):
    def render():
        return record_table(
            "table7_aux_tasks",
            f"Table 7 (reproduced): auxiliary tasks at {LABEL_FRACTION:.0%} labels, "
            "mean test acc over 3 seeds",
            ["auxiliary task", "survey examples", "test accuracy"],
            ROWS,
            note=("Expected shape: self-supervised auxiliaries match or beat"
                  " the main-task-only baseline in the low-label regime."),
        )

    once(benchmark, render)
    assert len(ROWS) == 5
    baseline = next(r[2] for r in ROWS if r[0] == "(main task only)")
    best_aux = max(r[2] for r in ROWS if r[0] != "(main task only)")
    assert best_aux >= baseline - 0.02
