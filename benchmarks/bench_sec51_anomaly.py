"""Sec. 5.1 — anomaly detection application, reproduced as a table.

Compares LUNAR (learned local), the classical kNN-distance detector it
generalizes, the GAE reconstruction detector, and the structure-blind
z-score baseline across outlier profiles (local vs global).
"""

from _harness import once, record_table

from repro.applications import run_anomaly_detection
from repro.datasets import make_anomaly

ROWS = []
EPOCHS = 120


def _profile(local_fraction, label, benchmark):
    ds = make_anomaly(n_inliers=350, n_outliers=35, local_fraction=local_fraction,
                      seed=0)
    results = once(benchmark, lambda: run_anomaly_detection(ds, epochs=EPOCHS, seed=0))
    for method, stats in results.items():
        ROWS.append((label, method, stats["auc"], stats["ap"], stats["p_at_k"]))
    return results


def test_global_outliers(benchmark):
    results = _profile(0.0, "global outliers", benchmark)
    # Everyone should find pure global outliers.
    assert min(s["auc"] for s in results.values()) > 0.85


def test_mixed_outliers(benchmark):
    results = _profile(0.6, "mixed (60% local)", benchmark)
    assert results["lunar"]["auc"] > results["zscore"]["auc"]


def test_local_outliers(benchmark):
    results = _profile(1.0, "local outliers", benchmark)
    # Local methods keep working; the marginal z-score degrades sharply.
    assert results["lunar"]["auc"] > results["zscore"]["auc"] + 0.1
    assert results["knn_distance"]["auc"] > results["zscore"]["auc"] + 0.1


def test_zzz_render_sec51(benchmark):
    def render():
        return record_table(
            "sec51_anomaly",
            "Sec. 5.1 (reproduced): anomaly detection across outlier profiles",
            ["outlier profile", "method", "ROC-AUC", "AP", "P@k"],
            ROWS,
            note=("Expected shape: all methods catch global outliers; only"
                  " neighborhood-based detectors (LUNAR/kNN/GAE) survive the"
                  " shift to local outliers."),
        )

    once(benchmark, render)
    assert len(ROWS) == 12
