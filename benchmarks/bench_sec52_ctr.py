"""Sec. 5.2 — click-through-rate prediction application, reproduced.

Fi-GNN's structural feature-interaction modelling vs logistic regression
(marginal only) and an MLP (implicit interactions), under weak and strong
latent user-item interaction signal.
"""

from _harness import once, record_table

from repro.applications import run_ctr_benchmark
from repro.datasets import make_ctr

ROWS = []
EPOCHS = 120


def _run(scale, label, benchmark):
    ds = make_ctr(n=2500, num_users=30, num_items=20, interaction_scale=scale, seed=0)
    results = once(benchmark, lambda: run_ctr_benchmark(ds, epochs=EPOCHS, seed=0))
    for method in ("logistic", "mlp", "fignn"):
        stats = results[method]
        ROWS.append((label, method, stats["auc"], stats["logloss"]))
    return results


def test_strong_interaction_signal(benchmark):
    results = _run(2.5, "strong interactions", benchmark)
    assert results["fignn"]["auc"] > results["logistic"]["auc"] + 0.15
    assert results["mlp"]["auc"] > results["logistic"]["auc"]


def test_weak_interaction_signal(benchmark):
    results = _run(0.8, "weak interactions", benchmark)
    # With weak interactions every model compresses toward the logistic.
    assert results["fignn"]["auc"] >= results["logistic"]["auc"] - 0.05


def test_zzz_render_sec52(benchmark):
    def render():
        return record_table(
            "sec52_ctr",
            "Sec. 5.2 (reproduced): CTR prediction, interaction-signal sweep",
            ["signal", "method", "ROC-AUC", "log-loss"],
            ROWS,
            note=("Expected shape: fignn > mlp > logistic when interactions"
                  " dominate; the ordering compresses when they are weak."),
        )

    once(benchmark, render)
    assert len(ROWS) == 6
