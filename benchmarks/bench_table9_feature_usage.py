"""Table 9 — three ways to use features: nodes vs edges vs initial vectors.

The paper's Table 9 discusses pros/cons of using features (a) as feature
nodes, (b) to create edges, (c) as initial node vectors.  This benchmark
renders the same table-of-ways but with a measured column: the same mixed
tabular dataset under the three usages with matched budgets.
"""

import numpy as np
from _harness import once, record_table

from repro import nn
from repro.construction.intrinsic import bipartite_from_dataset, multiplex_from_dataset
from repro.construction.rules import knn_graph
from repro.datasets import make_fraud, train_val_test_masks
from repro.gnn.networks import GCN
from repro.metrics import accuracy, roc_auc
from repro.models import GRAPE, TabGNN
from repro.training.trainer import Trainer


def _auc(logits, y, mask):
    scores = logits[:, 1] - logits[:, 0]
    return roc_auc(y[mask], scores[mask])

EPOCHS = 100
ROWS = []


def _setup():
    ds = make_fraud(n=400, seed=0)
    rng = np.random.default_rng(0)
    train, val, test = train_val_test_masks(400, 0.6, 0.2, rng, stratify=ds.y)
    return ds, train, val, test


def _fit(model, forward, y, train, val):
    import numpy as _np

    counts = _np.bincount(y[train], minlength=2).astype(float)
    weights = counts.sum() / (2 * _np.maximum(counts, 1.0))
    opt = nn.Adam(model.parameters(), lr=0.01, weight_decay=5e-4)
    trainer = Trainer(model, opt, max_epochs=EPOCHS, patience=25)
    trainer.fit(
        lambda: nn.cross_entropy(forward(), y, mask=train, class_weights=weights),
        lambda: _auc(forward().data, y, val),
    )


def test_features_as_nodes(benchmark):
    ds, train, val, test = _setup()

    def run():
        graph = bipartite_from_dataset(ds)
        model = GRAPE(graph, 32, 2, np.random.default_rng(0), instance_init="ones")
        _fit(model, model, ds.y, train, val)
        return _auc(model().data, ds.y, test)

    acc = once(benchmark, run)
    ROWS.append((
        "as feature nodes", "bipartite + GRAPE", acc,
        "explicit instance-feature interactions; handles missing cells natively",
        "instance-instance paths are 2 hops; needs tailored message passing",
    ))
    assert acc > 0.55


def test_features_as_edges(benchmark):
    ds, train, val, test = _setup()

    def run():
        graph = multiplex_from_dataset(ds)
        # Features used ONLY to create edges: node inputs are constants.
        graph.x = np.ones((ds.num_instances, 1))
        for layer in graph.layers():
            layer.x = graph.x
        model = TabGNN(graph, 32, 2, np.random.default_rng(0))
        _fit(model, model, ds.y, train, val)
        return _auc(model().data, ds.y, test)

    acc = once(benchmark, run)
    ROWS.append((
        "to create edges", "same-value multiplex + TabGNN (constant inputs)", acc,
        "captures higher-order instance relationships via shared values",
        "edge-defining features can no longer be aggregated as content",
    ))
    assert acc > 0.45


def test_features_as_initial_vectors(benchmark):
    ds, train, val, test = _setup()

    def run():
        x = ds.to_matrix()
        graph = knn_graph(x, k=8, y=ds.y)
        model = GCN(graph, (32,), 2, np.random.default_rng(0))
        _fit(model, model, ds.y, train, val)
        return _auc(model().data, ds.y, test)

    acc = once(benchmark, run)
    ROWS.append((
        "as initial vectors", "kNN instance graph + GCN", acc,
        "direct content signal; compatible with any GNN",
        "feature-level relations stay implicit; less interpretable",
    ))
    assert acc > 0.55


def test_combined_usage(benchmark):
    """The survey's open question: combining usages (edges + initial vectors)."""
    ds, train, val, test = _setup()

    def run():
        graph = multiplex_from_dataset(ds)  # keeps features as node inputs too
        model = TabGNN(graph, 32, 2, np.random.default_rng(0))
        _fit(model, model, ds.y, train, val)
        return _auc(model().data, ds.y, test)

    acc = once(benchmark, run)
    ROWS.append((
        "edges + initial vectors", "multiplex + TabGNN (full)", acc,
        "relations for structure, raw features for content",
        "requires choosing which features define relations",
    ))
    assert acc > 0.55


def test_zzz_render_table9(benchmark):
    def render():
        return record_table(
            "table9_feature_usage",
            "Table 9 (reproduced): three feature usages, measured on one dataset",
            ["usage", "realization", "test AUC", "pro (survey)", "con (survey)"],
            ROWS,
            note=("Expected shape: combining usages wins; edges-only loses"
                  " the content signal; the other two are competitive."),
        )

    once(benchmark, render)
    assert len(ROWS) == 4
    by_usage = {r[0]: r[2] for r in ROWS}
    assert by_usage["edges + initial vectors"] >= by_usage["to create edges"] - 0.02
