"""Table 5 — the GNN model zoo for tabular representation learning.

The paper's Table 5 maps GNN architectures to the works that use them.
This benchmark runs every architecture family on matched data: homogeneous
convolutions share one kNN instance graph over a balanced, cluster-
structured table; the heterogeneous and hypergraph variants consume their
native value-node formulations of the same table; the (unsupervised) graph
autoencoder is evaluated on its native anomaly-scoring task.
"""

import numpy as np
from _harness import once, record_table

from repro import nn
from repro.construction.rules import knn_graph
from repro.datasets import make_anomaly, make_correlated_instances, train_val_test_masks
from repro.gnn import GraphAutoencoder
from repro.gnn.networks import build_network
from repro.metrics import accuracy, roc_auc
from repro.models import HeteroTabClassifier, HypergraphClassifier
from repro.tensor import Tensor
from repro.training.trainer import Trainer

EPOCHS = 100
ROWS = []


def _setup():
    ds = make_correlated_instances(n=400, cluster_strength=1.5, seed=0)
    rng = np.random.default_rng(0)
    train, val, test = train_val_test_masks(400, 0.3, 0.2, rng, stratify=ds.y)
    return ds, ds.to_matrix(), train, val, test


def _fit(model, forward, y, train, val):
    opt = nn.Adam(model.parameters(), lr=0.01, weight_decay=5e-4)
    trainer = Trainer(model, opt, max_epochs=EPOCHS, patience=25)
    trainer.fit(
        lambda: nn.cross_entropy(forward(), y, mask=train),
        lambda: accuracy(y[val], forward().data.argmax(1)[val]),
    )


def test_homogeneous_zoo(benchmark):
    ds, x, train, val, test = _setup()

    def run():
        graph = knn_graph(x, k=8, y=ds.y)
        out = {}
        for name in ("gcn", "sage", "gat", "gin", "gated"):
            model = build_network(name, graph, 32, ds.num_classes,
                                  np.random.default_rng(0))
            _fit(model, model, ds.y, train, val)
            out[name] = accuracy(ds.y[test], model().data.argmax(1)[test])
        return out

    results = once(benchmark, run)
    citations = {
        "gcn": "GINN, IDGL, SLAPS, SUBLIME",
        "sage": "LSTM-GNN, GRAPE, IGRM",
        "gat": "GATE, WPN, FinGAT",
        "gin": "DRSA-Net",
        "gated": "Fi-GNN, Causal-GNN",
    }
    for name, acc in results.items():
        ROWS.append((name.upper(), "homogeneous (kNN instance graph)",
                     citations[name], acc))
    # Mean aggregators are the reliable default on homophilic kNN graphs.
    assert results["gcn"] > 0.75 and results["sage"] > 0.75


def test_heterogeneous(benchmark):
    ds, x, train, val, test = _setup()

    def run():
        model = HeteroTabClassifier(
            ds, np.random.default_rng(0), hidden_dim=32,
            include_numerical_bins=True,
        )
        _fit(model, model, ds.y, train, val)
        return accuracy(ds.y[test], model().data.argmax(1)[test])

    acc = once(benchmark, run)
    ROWS.append(("HeteroGNN", "heterogeneous (binned value nodes)",
                 "HSGNN (HAN), xFraud (HGT), GraphFC", acc))
    assert acc > 0.5


def test_hypergraph(benchmark):
    ds, x, train, val, test = _setup()

    def run():
        model = HypergraphClassifier(ds, np.random.default_rng(0), hidden_dim=32)
        _fit(model, model, ds.y, train, val)
        return accuracy(ds.y[test], model().data.argmax(1)[test])

    acc = once(benchmark, run)
    ROWS.append(("HGNN", "hypergraph (rows as hyperedges)", "HCL, HyTrel, PET", acc))
    assert acc > 0.5


def test_graph_autoencoder_unsupervised(benchmark):
    anomaly_ds = make_anomaly(n_inliers=350, n_outliers=35, seed=0)
    x = anomaly_ds.to_matrix()

    def run():
        graph = knn_graph(x, k=8)
        adjacency = graph.gcn_adjacency()
        model = GraphAutoencoder(x.shape[1], (32,), 16, np.random.default_rng(0))
        opt = nn.Adam(model.parameters(), lr=0.01)
        loss_rng = np.random.default_rng(1)
        features = Tensor(x)
        for _ in range(EPOCHS):
            loss = model.reconstruction_loss(features, adjacency, graph.edge_index,
                                             loss_rng)
            opt.zero_grad()
            loss.backward()
            opt.step()
        scores = model.anomaly_scores(features, adjacency)
        return roc_auc(anomaly_ds.y, scores)

    auc = once(benchmark, run)
    ROWS.append(("GAE (unsup. anomaly AUC)", "homogeneous autoencoder",
                 "MST-GRA, GAEOD", auc))
    assert auc > 0.7


def test_zzz_render_table5(benchmark):
    def render():
        return record_table(
            "table5_gnn_zoo",
            "Table 5 (reproduced): GNN architectures on matched tabular data",
            ["architecture", "graph type", "survey examples", "measured"],
            ROWS,
            note=("Classification rows: test accuracy (3 balanced classes,"
                  " 30% labels). GAE row: unsupervised anomaly ROC-AUC on its"
                  " native task. Expected shape: mean-aggregating convs"
                  " (GCN/SAGE/GAT/Gated) cluster together; sum-aggregating"
                  " GIN is less suited to dense homophilic kNN graphs."),
        )

    once(benchmark, render)
    assert len(ROWS) >= 8
