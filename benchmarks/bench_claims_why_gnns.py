"""Sec. 2.5 — "Why are GNNs required for TDL?": the five claims, measured.

The paper argues GNNs help tabular learning through (a) instance
correlation, (b) feature interaction, (c) high-order connectivity,
(d) supervision signal, (e) inductive capability.  Each claim gets a
controlled experiment whose *shape* (who wins, and when the advantage
vanishes) is the reproduced artifact.
"""

import numpy as np
from _harness import once, record_table

from repro import nn
from repro.baselines import LogisticRegressionClassifier, MLPClassifier
from repro.construction.rules import knn_graph
from repro.datasets import (
    make_correlated_instances,
    make_feature_interaction,
    train_val_test_masks,
)
from repro.gnn.networks import GCN
from repro.metrics import accuracy
from repro.models import FATE, KNNGraphClassifier, FeatureGraphClassifier
from repro.training.trainer import Trainer

EPOCHS = 100
ROWS = []


def test_claim_a_instance_correlation(benchmark):
    """GNN beats MLP iff the data actually contains instance correlation."""

    def run():
        out = {}
        for strength in (0.0, 2.0):
            ds = make_correlated_instances(
                n=300, cluster_strength=strength, flip_y=0.05, seed=0
            )
            x = ds.to_matrix()
            rng = np.random.default_rng(0)
            train, val, test = train_val_test_masks(300, 0.15, 0.15, rng,
                                                    stratify=ds.y)
            gnn = KNNGraphClassifier(k=8, max_epochs=EPOCHS, seed=0)
            gnn.fit(x, ds.y, train_mask=train, val_mask=val)
            gnn_acc = accuracy(ds.y[test], gnn.predict(test))
            mlp = MLPClassifier(hidden_dims=(32,), epochs=EPOCHS, seed=0)
            mlp.fit(x[train], ds.y[train])
            mlp_acc = accuracy(ds.y[test], mlp.predict(x[test]))
            out[strength] = (gnn_acc, mlp_acc)
        return out

    results = once(benchmark, run)
    for strength, (gnn_acc, mlp_acc) in results.items():
        ROWS.append((f"(a) instance correlation (strength={strength})",
                     "kNN-GCN", gnn_acc, "MLP", mlp_acc))
    # With correlation the GNN wins; without it, nobody beats chance by much.
    assert results[2.0][0] > results[2.0][1]
    assert results[0.0][0] < 0.55 and results[0.0][1] < 0.55


def test_claim_b_feature_interaction(benchmark):
    """Interaction-aware models solve XOR-style data; marginal models cannot."""
    ds = make_feature_interaction(n=800, num_pairs=2, noise_features=4, seed=0)
    x = ds.numerical
    rng = np.random.default_rng(0)
    train, val, test = train_val_test_masks(800, 0.6, 0.2, rng, stratify=ds.y)

    def run():
        logistic = LogisticRegressionClassifier(epochs=400).fit(x[train], ds.y[train])
        log_acc = accuracy(ds.y[test], logistic.predict(x[test]))
        model = FeatureGraphClassifier(x.shape[1], 2, np.random.default_rng(0),
                                       embed_dim=16)
        opt = nn.Adam(model.parameters(), lr=0.01)
        trainer = Trainer(model, opt, max_epochs=2 * EPOCHS, patience=40)
        trainer.fit(
            lambda: nn.cross_entropy(model(x), ds.y, mask=train),
            lambda: accuracy(ds.y[val], model(x).data.argmax(1)[val]),
        )
        fg_acc = accuracy(ds.y[test], model(x).data.argmax(1)[test])
        return log_acc, fg_acc

    log_acc, fg_acc = once(benchmark, run)
    ROWS.append(("(b) feature interaction (XOR pairs)", "feature-graph GNN",
                 fg_acc, "logistic (marginal)", log_acc))
    assert log_acc < 0.62  # marginal model is near chance
    assert fg_acc > log_acc + 0.1


def test_claim_c_high_order_connectivity(benchmark):
    """Deeper message passing exploits multi-hop structure at low label rates."""
    ds = make_correlated_instances(n=300, cluster_strength=1.2, seed=1)
    x = ds.to_matrix()
    rng = np.random.default_rng(0)
    train, val, test = train_val_test_masks(300, 0.07, 0.13, rng, stratify=ds.y)
    graph = knn_graph(x, k=8, y=ds.y)

    def run():
        out = {}
        for depth in (1, 2, 3):
            hidden = [32] * (depth - 1)
            model = GCN(graph, hidden, ds.num_classes, np.random.default_rng(0))
            opt = nn.Adam(model.parameters(), lr=0.01, weight_decay=5e-4)
            trainer = Trainer(model, opt, max_epochs=EPOCHS, patience=30)
            trainer.fit(
                lambda: nn.cross_entropy(model(), ds.y, mask=train),
                lambda: accuracy(ds.y[val], model().data.argmax(1)[val]),
            )
            out[depth] = accuracy(ds.y[test], model().data.argmax(1)[test])
        return out

    results = once(benchmark, run)
    for depth, acc in results.items():
        ROWS.append((f"(c) high-order connectivity ({depth}-hop)",
                     f"GCN depth {depth}", acc, "", ""))
    assert max(results[2], results[3]) >= results[1] - 0.02


def test_claim_d_supervision_signal(benchmark):
    """The GNN-over-MLP gap grows as labels get scarce (semi-supervision)."""
    ds = make_correlated_instances(n=400, cluster_strength=1.5, seed=2)
    x = ds.to_matrix()

    def run():
        out = {}
        for fraction in (0.05, 0.2, 0.6):
            rng = np.random.default_rng(0)
            train, val, test = train_val_test_masks(400, fraction, 0.1, rng,
                                                    stratify=ds.y)
            gnn = KNNGraphClassifier(k=8, max_epochs=EPOCHS, seed=0)
            gnn.fit(x, ds.y, train_mask=train, val_mask=val)
            gnn_acc = accuracy(ds.y[test], gnn.predict(test))
            mlp = MLPClassifier(hidden_dims=(32,), epochs=EPOCHS, seed=0)
            mlp.fit(x[train], ds.y[train])
            mlp_acc = accuracy(ds.y[test], mlp.predict(x[test]))
            out[fraction] = (gnn_acc, mlp_acc)
        return out

    results = once(benchmark, run)
    for fraction, (gnn_acc, mlp_acc) in results.items():
        ROWS.append((f"(d) supervision signal ({fraction:.0%} labels)",
                     "kNN-GCN", gnn_acc, "MLP", mlp_acc))
    gaps = {f: g - m for f, (g, m) in results.items()}
    assert gaps[0.05] > gaps[0.6] - 0.02, "gap should grow as labels shrink"


def test_claim_e_inductive_capability(benchmark):
    """FATE generalizes to feature sets never seen during training."""
    rng = np.random.default_rng(0)
    n, d_train, d_extra = 400, 10, 3
    x_full = rng.normal(size=(n, d_train + d_extra))
    coef = rng.normal(size=d_train + d_extra)
    y = (x_full @ coef > 0).astype(np.int64)
    train = np.zeros(n, dtype=bool)
    train[:250] = True
    test = ~train

    def run():
        model = FATE(d_train, 2, np.random.default_rng(0))
        opt = nn.Adam(model.parameters(), lr=0.01)
        for _ in range(EPOCHS):
            loss = nn.cross_entropy(
                model(x_full[train][:, :d_train]), y[train]
            )
            opt.zero_grad()
            loss.backward()
            opt.step()
        seen_only = accuracy(y[test], model(x_full[test][:, :d_train]).data.argmax(1))
        index = np.arange(d_train + d_extra)
        with_unseen = accuracy(
            y[test], model(x_full[test], feature_index=index).data.argmax(1)
        )
        return seen_only, with_unseen

    seen_only, with_unseen = once(benchmark, run)
    ROWS.append(("(e) inductive capability", "FATE (trained cols)", seen_only,
                 "FATE (+3 unseen cols)", with_unseen))
    assert with_unseen > 0.6


def test_zzz_render_claims(benchmark):
    def render():
        return record_table(
            "claims_why_gnns",
            "Sec. 2.5 (reproduced): the five 'why GNNs' claims, measured",
            ["claim / condition", "GNN variant", "score", "baseline", "score "],
            ROWS,
            note=("Shapes: (a) GNN>MLP only when correlation is planted;"
                  " (b) marginal models fail XOR; (c) depth >= 1-hop;"
                  " (d) GNN advantage grows with label scarcity;"
                  " (e) graceful feature extrapolation."),
        )

    once(benchmark, render)
    assert len(ROWS) >= 9
