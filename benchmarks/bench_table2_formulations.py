"""Table 2 — representative GNN4TDL methods and their formulation settings.

The paper's Table 2 lists one row per method: graph type, node choice, edge
creation, initial features and task.  This benchmark *runs* one
representative implementation per formulation family on a matched synthetic
task and appends the measured metric, turning the survey's descriptive
table into an executable one.
"""

import numpy as np
from _harness import once, record_table

from repro import nn
from repro.construction.intrinsic import multiplex_from_dataset
from repro.datasets import (
    make_anomaly,
    make_correlated_instances,
    make_ctr,
    make_fraud,
    train_val_test_masks,
)
from repro.metrics import accuracy, roc_auc
from repro.models import (
    GRAPE,
    IDGL,
    LUNAR,
    SLAPS,
    FeatureGraphClassifier,
    FiGNN,
    HeteroTabClassifier,
    HypergraphClassifier,
    KNNGraphClassifier,
    TabGNN,
)
from repro.training.trainer import Trainer

EPOCHS = 80
ROWS = []


def _fit_full_batch(model, forward, y, train, val, epochs=EPOCHS, lr=0.01):
    opt = nn.Adam(model.parameters(), lr=lr, weight_decay=5e-4)
    trainer = Trainer(model, opt, max_epochs=epochs, patience=25)
    trainer.fit(
        lambda: nn.cross_entropy(forward(), y, mask=train),
        lambda: accuracy(y[val], forward().data.argmax(1)[val]),
    )


def _classification_setup(seed=0):
    ds = make_fraud(n=400, seed=seed)
    rng = np.random.default_rng(seed)
    train, val, test = train_val_test_masks(400, 0.6, 0.2, rng, stratify=ds.y)
    return ds, train, val, test


def test_row_knn_instance_graph(benchmark):
    """SLAPS/LUNAR-family setting: homogeneous instance graph, rule edges."""
    ds = make_correlated_instances(n=300, cluster_strength=1.5, seed=0)
    rng = np.random.default_rng(0)
    train, val, test = train_val_test_masks(300, 0.3, 0.2, rng, stratify=ds.y)

    def run():
        clf = KNNGraphClassifier(k=8, max_epochs=EPOCHS, seed=0)
        clf.fit(ds.to_matrix(), ds.y, train_mask=train, val_mask=val)
        return accuracy(ds.y[test], clf.predict(test))

    acc = once(benchmark, run)
    ROWS.append(("kNN-GCN (LSTM-GNN/GNN4MV)", "Homo", "Instance", "Rule (kNN)",
                 "Raw feat.", "Node cla.", f"acc={acc:.3f}"))
    assert acc > 0.6


def test_row_learned_instance_graph_idgl(benchmark):
    ds = make_correlated_instances(n=250, cluster_strength=1.5, seed=1)
    rng = np.random.default_rng(1)
    train, val, test = train_val_test_masks(250, 0.3, 0.2, rng, stratify=ds.y)
    x = ds.to_matrix()

    def run():
        model = IDGL(x, ds.num_classes, np.random.default_rng(0), k=15)
        trainer = Trainer(model, nn.Adam(model.parameters(), lr=0.01),
                          max_epochs=EPOCHS, patience=25)
        trainer.fit(lambda: model.loss(ds.y, mask=train),
                    lambda: accuracy(ds.y[val], model().data.argmax(1)[val]))
        return accuracy(ds.y[test], model().data.argmax(1)[test])

    acc = once(benchmark, run)
    ROWS.append(("IDGL", "Homo", "Instance", "Learned (metric)", "Raw feat.",
                 "Node cla.", f"acc={acc:.3f}"))
    assert acc > 0.6


def test_row_learned_instance_graph_slaps(benchmark):
    ds = make_correlated_instances(n=250, cluster_strength=1.5, seed=2)
    rng = np.random.default_rng(2)
    train, val, test = train_val_test_masks(250, 0.3, 0.2, rng, stratify=ds.y)
    x = ds.to_matrix()

    def run():
        model = SLAPS(x, ds.num_classes, np.random.default_rng(0), k=15)
        trainer = Trainer(model, nn.Adam(model.parameters(), lr=0.01),
                          max_epochs=EPOCHS, patience=25)
        trainer.fit(lambda: model.loss(ds.y, mask=train),
                    lambda: accuracy(ds.y[val], model().data.argmax(1)[val]))
        return accuracy(ds.y[test], model().data.argmax(1)[test])

    acc = once(benchmark, run)
    ROWS.append(("SLAPS", "Homo", "Instance", "Learned (neural)", "Raw feat.",
                 "Node cla.", f"acc={acc:.3f}"))
    assert acc > 0.6


def test_row_feature_graph_fignn(benchmark):
    ds = make_ctr(n=2000, seed=0)
    rng = np.random.default_rng(0)
    train, val, test = train_val_test_masks(2000, 0.6, 0.2, rng, stratify=ds.y)

    def run():
        model = FiGNN(ds.cardinalities, 16, np.random.default_rng(0))
        opt = nn.Adam(model.parameters(), lr=0.01)
        trainer = Trainer(model, opt, max_epochs=EPOCHS, patience=20)
        trainer.fit(
            lambda: nn.binary_cross_entropy_with_logits(model(ds), ds.y, mask=train),
            lambda: roc_auc(ds.y[val], model.predict_proba(ds)[val]),
        )
        return roc_auc(ds.y[test], model.predict_proba(ds)[test])

    auc = once(benchmark, run)
    ROWS.append(("Fi-GNN", "Homo", "Feature", "Rule (fully-conn.)", "One-hot emb.",
                 "Graph cla.", f"auc={auc:.3f}"))
    assert auc > 0.6


def test_row_feature_graph_t2g(benchmark):
    ds = make_correlated_instances(n=300, cluster_strength=1.5, seed=3)
    rng = np.random.default_rng(3)
    train, val, test = train_val_test_masks(300, 0.6, 0.2, rng, stratify=ds.y)
    x = ds.to_matrix()

    def run():
        model = FeatureGraphClassifier(x.shape[1], ds.num_classes,
                                       np.random.default_rng(0))
        _fit_full_batch(model, lambda: model(x), ds.y, train, val)
        return accuracy(ds.y[test], model(x).data.argmax(1)[test])

    acc = once(benchmark, run)
    ROWS.append(("T2G-Former-lite", "Homo", "Feature", "Learned (direct)",
                 "Tokenized feat.", "Graph cla.", f"acc={acc:.3f}"))
    assert acc > 0.5


def test_row_bipartite_grape(benchmark):
    ds, train, val, test = _classification_setup(seed=4)

    def run():
        from repro.construction.intrinsic import bipartite_from_dataset

        graph = bipartite_from_dataset(ds)
        model = GRAPE(graph, 32, ds.num_classes, np.random.default_rng(0),
                      instance_init="features")
        _fit_full_batch(model, model, ds.y, train, val)
        return accuracy(ds.y[test], model().data.argmax(1)[test])

    acc = once(benchmark, run)
    ROWS.append(("GRAPE", "Hete-Bipartite", "Instance+Feature", "Intrinsic",
                 "1/one-hot", "Node cla.", f"acc={acc:.3f}"))
    assert acc > 0.6


def test_row_multiplex_tabgnn(benchmark):
    ds, train, val, test = _classification_setup(seed=5)

    def run():
        graph = multiplex_from_dataset(ds)
        model = TabGNN(graph, 32, ds.num_classes, np.random.default_rng(0))
        _fit_full_batch(model, model, ds.y, train, val)
        return accuracy(ds.y[test], model().data.argmax(1)[test])

    acc = once(benchmark, run)
    ROWS.append(("TabGNN", "Hete-Multiplex", "Instance", "Rule (same value)",
                 "Raw feat.", "Node cla.", f"acc={acc:.3f}"))
    assert acc > 0.6


def test_row_hetero_gct(benchmark):
    ds, train, val, test = _classification_setup(seed=6)

    def run():
        model = HeteroTabClassifier(ds, np.random.default_rng(0), hidden_dim=32)
        _fit_full_batch(model, model, ds.y, train, val)
        return accuracy(ds.y[test], model().data.argmax(1)[test])

    acc = once(benchmark, run)
    ROWS.append(("GCT/HSGNN-lite", "Hete", "Instance+Feature value", "Intrinsic",
                 "Raw/embedded", "Node cla.", f"acc={acc:.3f}"))
    assert acc > 0.6


def test_row_hypergraph_hcl(benchmark):
    ds, train, val, test = _classification_setup(seed=7)

    def run():
        model = HypergraphClassifier(ds, np.random.default_rng(0), hidden_dim=32)
        _fit_full_batch(model, model, ds.y, train, val)
        return accuracy(ds.y[test], model().data.argmax(1)[test])

    acc = once(benchmark, run)
    ROWS.append(("HCL-lite", "Hypergraph", "Feature value", "Intrinsic (row=edge)",
                 "One-hot emb.", "Hyperedge cla.", f"acc={acc:.3f}"))
    assert acc > 0.6


def test_row_lunar_anomaly(benchmark):
    ds = make_anomaly(n_inliers=300, n_outliers=30, seed=0)

    def run():
        model = LUNAR(k=10, seed=0, epochs=EPOCHS).fit(ds.to_matrix())
        return roc_auc(ds.y, model.score())

    auc = once(benchmark, run)
    ROWS.append(("LUNAR", "Homo", "Instance", "Rule (kNN)", "Raw feat.",
                 "Anomaly det.", f"auc={auc:.3f}"))
    assert auc > 0.8


def test_zzz_render_table2(benchmark):
    """Collector: render Table 2 after all rows have been measured."""

    def render():
        return record_table(
            "table2_formulations",
            "Table 2 (reproduced): representative methods, formulation settings, measured metric",
            ["method", "graph type", "node", "edge", "node init", "task", "measured"],
            ROWS,
            note="Columns mirror the survey's Table 2; the last column is measured here.",
        )

    once(benchmark, render)
    assert len(ROWS) >= 9
