"""Table 1 — survey scope matrix (TDP/GRL/GSL/SSL/TS/AT/App).

The paper's Table 1 claims the survey uniquely covers all seven axes for
tabular data.  This benchmark regenerates the row for *this library* by
verifying each axis resolves to working, instantiable code — coverage is
measured, not asserted.
"""

from _harness import once, record_table

from repro import registry


def test_table1_scope_matrix(benchmark):
    resolved = once(benchmark, registry.verify_all_leaves)
    assert all(resolved.values()), "some taxonomy leaves failed to resolve"

    axis_to_phase = {
        "TDP": ("representation", "training"),
        "GRL": ("representation",),
        "GSL": ("construction",),
        "SSL": ("training",),
        "TS": ("training",),
        "AT": ("training",),
        "App": ("formulation", "construction", "representation", "training"),
    }
    grouped = registry.leaves_by_phase()
    rows = []
    for axis, description in registry.SCOPE_AXES.items():
        phases = axis_to_phase[axis]
        leaf_count = sum(len(grouped.get(p, [])) for p in phases)
        rows.append((axis, "yes", leaf_count, description))

    record_table(
        "table1_scope",
        "Table 1 (reproduced): scope coverage of this library",
        ["axis", "covered", "taxonomy leaves", "where"],
        rows,
        note=f"All {len(resolved)} taxonomy leaves resolve to instantiable code.",
    )
