"""Sec. 5.3 — EHR risk prediction application, reproduced.

Patient × diagnosis-code records under varying comorbidity coherence: the
graph formulations (heterogeneous patient-code, hypergraph, patient-kNN)
versus the flat multi-hot MLP.
"""

from _harness import once, record_table

from repro.applications import run_ehr_benchmark
from repro.datasets import make_ehr

ROWS = []
EPOCHS = 100
METHODS = ("mlp", "hetero_gnn", "hypergraph_gnn", "knn_gcn")


def _run(comorbidity, label, benchmark):
    ds = make_ehr(n=400, num_codes=40, comorbidity=comorbidity, seed=0)
    results = once(benchmark, lambda: run_ehr_benchmark(ds, epochs=EPOCHS, seed=0))
    for method in METHODS:
        stats = results[method]
        ROWS.append((label, method, stats["accuracy"], stats["macro_f1"]))
    return results


def test_coherent_comorbidity(benchmark):
    results = _run(0.85, "coherent codes (0.85)", benchmark)
    assert max(s["accuracy"] for s in results.values()) > 0.85


def test_noisy_comorbidity(benchmark):
    results = _run(0.55, "noisy codes (0.55)", benchmark)
    graph_best = max(
        results[m]["accuracy"] for m in ("hetero_gnn", "hypergraph_gnn", "knn_gcn")
    )
    # Structure should at least match the flat baseline under code noise.
    assert graph_best >= results["mlp"]["accuracy"] - 0.05


def test_zzz_render_sec53(benchmark):
    def render():
        return record_table(
            "sec53_medical",
            "Sec. 5.3 (reproduced): EHR risk prediction, code-coherence sweep",
            ["code coherence", "method", "accuracy", "macro F1"],
            ROWS,
            note=("Expected shape: all formulations solve the coherent case;"
                  " graph formulations hold up at least as well as the flat"
                  " MLP as code noise rises."),
        )

    once(benchmark, render)
    assert len(ROWS) == 8
