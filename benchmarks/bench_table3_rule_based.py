"""Table 3 — rule-based graph construction: similarity × edge criterion.

The paper's Table 3 catalogues rule-based constructions by similarity
measure and edge criterion.  This benchmark sweeps the grid on
instance-correlated data and measures downstream node-classification
accuracy with a fixed GCN, plus the graph's edge homophily — the quantity
that mechanistically explains the accuracy differences.
"""

import numpy as np
from _harness import once, record_table

from repro import nn
from repro.construction.rules import (
    knn_graph,
    same_value_graph,
    threshold_graph,
)
from repro.datasets import KBinsDiscretizer, make_correlated_instances, train_val_test_masks
from repro.datasets.preprocessing import StandardScaler
from repro.gnn.networks import GCN
from repro.graph import edge_homophily
from repro.metrics import accuracy
from repro.training.trainer import Trainer

EPOCHS = 80
ROWS = []


def _evaluate(graph, ds, train, val, test, seed=0):
    graph.x = ds.to_matrix()
    model = GCN(graph, (32,), ds.num_classes, np.random.default_rng(seed))
    opt = nn.Adam(model.parameters(), lr=0.01, weight_decay=5e-4)
    trainer = Trainer(model, opt, max_epochs=EPOCHS, patience=25)
    trainer.fit(
        lambda: nn.cross_entropy(model(), ds.y, mask=train),
        lambda: accuracy(ds.y[val], model().data.argmax(1)[val]),
    )
    acc = accuracy(ds.y[test], model().data.argmax(1)[test])
    homophily = edge_homophily(graph.edge_index, ds.y)
    return acc, homophily


def _setup():
    ds = make_correlated_instances(n=300, cluster_strength=1.5, seed=0)
    rng = np.random.default_rng(0)
    train, val, test = train_val_test_masks(300, 0.3, 0.2, rng, stratify=ds.y)
    return ds, ds.to_matrix(), train, val, test


def test_knn_criterion_across_similarities(benchmark):
    ds, x, train, val, test = _setup()

    def run():
        out = {}
        for metric in ("euclidean", "cosine", "manhattan"):
            graph = knn_graph(x, k=8, metric=metric, y=ds.y)
            out[metric] = _evaluate(graph, ds, train, val, test)
        return out

    results = once(benchmark, run)
    for metric, (acc, hom) in results.items():
        ROWS.append((metric, "kNN (k=8)", f"{acc:.3f}", f"{hom:.3f}"))
        assert acc > 0.6


def test_threshold_criterion(benchmark):
    ds, x, train, val, test = _setup()

    def run():
        out = {}
        for measure, thr in (("cosine", 0.5), ("rbf", 0.7), ("pearson", 0.5)):
            graph = threshold_graph(x, threshold=thr, measure=measure, y=ds.y)
            if graph.num_edges == 0:
                out[measure] = (float("nan"), float("nan"))
                continue
            out[measure] = _evaluate(graph, ds, train, val, test)
        return out

    results = once(benchmark, run)
    for measure, (acc, hom) in results.items():
        ROWS.append((measure, "threshold", f"{acc:.3f}", f"{hom:.3f}"))


def test_same_value_criterion(benchmark):
    ds, x, train, val, test = _setup()

    def run():
        codes = KBinsDiscretizer(6).fit_transform(
            StandardScaler().fit_transform(ds.numerical[:, :1])
        )
        graph = same_value_graph(codes[:, 0], y=ds.y)
        return _evaluate(graph, ds, train, val, test)

    acc, hom = once(benchmark, run)
    ROWS.append(("discretized col 0", "same feature value", f"{acc:.3f}", f"{hom:.3f}"))


def test_fully_connected_criterion(benchmark):
    ds, x, train, val, test = _setup()

    def run():
        from repro.construction.rules import fully_connected_graph

        graph = fully_connected_graph(300, y=ds.y)
        return _evaluate(graph, ds, train, val, test)

    acc, hom = once(benchmark, run)
    ROWS.append(("(none)", "fully-connected", f"{acc:.3f}", f"{hom:.3f}"))


def test_zzz_render_table3(benchmark):
    def render():
        return record_table(
            "table3_rule_based",
            "Table 3 (reproduced): rule-based construction grid, measured",
            ["similarity", "edge criterion", "GCN test acc", "edge homophily"],
            ROWS,
            note=("Expected shape: kNN criteria dominate; fully-connected"
                  " over-smooths (homophily ≈ class prior); threshold quality"
                  " tracks its homophily."),
        )

    once(benchmark, render)
    assert len(ROWS) >= 8
    knn_accs = [float(r[2]) for r in ROWS if r[1].startswith("kNN")]
    fc_accs = [float(r[2]) for r in ROWS if r[1] == "fully-connected"]
    assert min(knn_accs) > max(fc_accs), "kNN should beat fully-connected"
