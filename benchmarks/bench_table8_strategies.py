"""Table 8 — training strategies, measured on one shared problem.

The paper's Table 8 catalogues training strategies.  This benchmark trains
the same GCN-on-kNN-graph model under every strategy and reports the final
test accuracy (plus reconstruction error for the adversarial arm, whose
objective is imputation realism rather than classification).
"""

import numpy as np
from _harness import once, record_table

from repro import nn
from repro.construction.learned import DirectGraphLearner
from repro.construction.rules import knn_edges, knn_graph
from repro.datasets import make_correlated_instances, train_val_test_masks
from repro.gnn.dense import DenseGNN
from repro.gnn.networks import GCN
from repro.metrics import accuracy
from repro.tensor import Tensor
from repro.training import (
    FeatureReconstructionTask,
    Trainer,
    train_adversarial_reconstruction,
    train_alternating,
    train_bilevel,
    train_end_to_end,
    train_pretrain_finetune,
    train_two_stage,
)

EPOCHS = 120
ROWS = []


def _setup(seed=0):
    ds = make_correlated_instances(n=300, cluster_strength=1.2, seed=seed)
    x = ds.to_matrix()
    rng = np.random.default_rng(seed)
    train, val, test = train_val_test_masks(300, 0.15, 0.15, rng, stratify=ds.y)
    graph = knn_graph(x, k=8, y=ds.y)
    return ds, x, graph, train, val, test


def test_end_to_end(benchmark):
    ds, x, graph, train, val, test = _setup()

    def run():
        model = GCN(graph, (32,), ds.num_classes, np.random.default_rng(0))
        train_end_to_end(
            model,
            lambda: nn.cross_entropy(model(), ds.y, mask=train),
            lambda: accuracy(ds.y[val], model().data.argmax(1)[val]),
            max_epochs=EPOCHS,
        )
        return accuracy(ds.y[test], model().data.argmax(1)[test])

    acc = once(benchmark, run)
    ROWS.append(("end-to-end", "TabGSL, LUNAR, TabGNN, Fi-GNN", acc))
    assert acc > 0.6


def test_two_stage(benchmark):
    ds, x, graph, train, val, test = _setup()

    def run():
        # Stage 1: unsupervised reconstruction pretrains representations;
        # stage 2: a fresh head is trained on the frozen embeddings.
        def stage1():
            model = GCN(graph, (32,), 32, np.random.default_rng(0))
            task = FeatureReconstructionTask(32, x.shape[1], np.random.default_rng(1),
                                             target=x)
            opt = nn.Adam(model.parameters() + task.parameters(), lr=0.01)
            for _ in range(EPOCHS // 2):
                loss = task.loss(model.embed())
                opt.zero_grad()
                loss.backward()
                opt.step()
            model.eval()
            return model.embed().data

        def stage2(embeddings):
            head = nn.MLP(embeddings.shape[1], (16,), ds.num_classes,
                          np.random.default_rng(2))
            opt = nn.Adam(head.parameters(), lr=0.01)
            feats = Tensor(embeddings)
            trainer = Trainer(head, opt, max_epochs=EPOCHS, patience=25)
            trainer.fit(
                lambda: nn.cross_entropy(head(feats), ds.y, mask=train),
                lambda: accuracy(ds.y[val], head(feats).data.argmax(1)[val]),
            )
            return accuracy(ds.y[test], head(feats).data.argmax(1)[test])

        _, acc = train_two_stage(stage1, stage2)
        return acc

    acc = once(benchmark, run)
    ROWS.append(("two-stage", "SUBLIME, GRAPE, GINN, MedGraph", acc))
    assert acc > 0.5


def test_pretrain_finetune(benchmark):
    ds, x, graph, train, val, test = _setup()

    def run():
        model = GCN(graph, (32,), ds.num_classes, np.random.default_rng(0))
        task = FeatureReconstructionTask(32, x.shape[1], np.random.default_rng(1),
                                         target=x)
        train_pretrain_finetune(
            model,
            pretrain_loss_fn=lambda: task.loss(model.embed()),
            finetune_loss_fn=lambda: nn.cross_entropy(model(), ds.y, mask=train),
            val_score_fn=lambda: accuracy(ds.y[val], model().data.argmax(1)[val]),
            pretrain_epochs=EPOCHS // 2,
            finetune_epochs=EPOCHS,
        )
        return accuracy(ds.y[test], model().data.argmax(1)[test])

    acc = once(benchmark, run)
    ROWS.append(("pretrain-finetune", "ALLG, GraphFC", acc))
    assert acc > 0.6


def test_alternating(benchmark):
    ds, x, graph, train, val, test = _setup()

    def run():
        model = GCN(graph, (32,), ds.num_classes, np.random.default_rng(0))
        task = FeatureReconstructionTask(32, x.shape[1], np.random.default_rng(1),
                                         target=x)
        train_alternating(
            model,
            main_loss_fn=lambda: nn.cross_entropy(model(), ds.y, mask=train),
            aux_loss_fn=lambda: task.loss(model.embed()),
            val_score_fn=lambda: accuracy(ds.y[val], model().data.argmax(1)[val]),
            max_epochs=EPOCHS,
            adapt_every=15,
        )
        return accuracy(ds.y[test], model().data.argmax(1)[test])

    acc = once(benchmark, run)
    ROWS.append(("alternating (GEDI)", "GEDI", acc))
    assert acc > 0.6


def test_bilevel(benchmark):
    ds, x, graph, train, val, test = _setup()

    def run():
        n = x.shape[0]
        prior = np.zeros((n, n))
        edges = knn_edges(x, k=8)
        prior[edges[1], edges[0]] = 1.0
        prior = np.maximum(prior, prior.T)
        learner = DirectGraphLearner(n, np.random.default_rng(0),
                                     init_adjacency=prior, init_scale=4.0)
        gnn = DenseGNN(x.shape[1], (32,), ds.num_classes, np.random.default_rng(1))
        features = Tensor(x)

        def loss_on(mask):
            return nn.cross_entropy(gnn(features, learner()), ds.y, mask=mask)

        train_bilevel(learner.parameters(), gnn.parameters(),
                      loss_fn=lambda: loss_on(train),
                      val_loss_fn=lambda: loss_on(val),
                      outer_steps=EPOCHS // 5, inner_steps=5)
        gnn.eval()
        return accuracy(ds.y[test], gnn(features, learner()).data.argmax(1)[test])

    acc = once(benchmark, run)
    ROWS.append(("bi-level", "LDS, FIVES, FATE", acc))
    assert acc > 0.6


def test_adversarial(benchmark):
    """GINN-style: adversarial term improves reconstruction realism.

    Measured as reconstruction RMSE of held-out corrupted cells with and
    without the adversarial discriminator (lower is better)."""
    ds, x, graph, train, val, test = _setup()
    rng = np.random.default_rng(0)
    corrupt = rng.random(x.shape) < 0.2
    corrupted = np.where(corrupt, 0.0, x)

    def run_variant(adv_weight):
        generator = nn.MLP(x.shape[1], (32,), x.shape[1], np.random.default_rng(1))
        discriminator = nn.MLP(x.shape[1], (32,), 1, np.random.default_rng(2))
        inputs = Tensor(corrupted)
        train_adversarial_reconstruction(
            generator, discriminator,
            real_rows_fn=lambda: x,
            fake_rows_fn=lambda: generator(inputs),
            recon_loss_fn=lambda: nn.mse_loss(generator(inputs), x),
            epochs=EPOCHS // 2,
            adv_weight=adv_weight,
        )
        recon = generator(inputs).data
        return float(np.sqrt(np.mean((recon[corrupt] - x[corrupt]) ** 2)))

    def run():
        return run_variant(0.1), run_variant(0.0)

    adv_rmse, plain_rmse = once(benchmark, run)
    ROWS.append(("adversarial (GINN)", "GINN",
                 f"recon RMSE {adv_rmse:.3f} (vs {plain_rmse:.3f} plain)"))


def test_zzz_render_table8(benchmark):
    def render():
        return record_table(
            "table8_strategies",
            "Table 8 (reproduced): training strategies on one shared problem",
            ["strategy", "survey examples", "measured"],
            ROWS,
            note=("Classification rows: test accuracy at 15% labels."
                  " Expected shape: end-to-end is the strong default;"
                  " two-stage pays a decoupling cost; pretraining/alternating"
                  " are competitive."),
        )

    once(benchmark, render)
    assert len(ROWS) == 6
