"""Table 4 — learning-based graph construction: metric vs neural vs direct.

The paper's Table 4 compares structure learners by strategy, initialization
and training.  This benchmark trains all three strategies on the same
*structure-corrupted* problem (clusters exist but no graph is given) and a
rule-based kNN control, measuring what each learner recovers.
"""

import numpy as np
from _harness import once, record_table

from repro import nn
from repro.construction.learned import DirectGraphLearner
from repro.construction.rules import knn_edges
from repro.datasets import make_correlated_instances, train_val_test_masks
from repro.gnn.dense import DenseGNN
from repro.metrics import accuracy
from repro.models import IDGL, SLAPS, KNNGraphClassifier
from repro.tensor import Tensor
from repro.training import Trainer, train_bilevel

EPOCHS = 100
ROWS = []


def _setup():
    ds = make_correlated_instances(n=250, cluster_strength=1.5, seed=0)
    rng = np.random.default_rng(0)
    train, val, test = train_val_test_masks(250, 0.3, 0.2, rng, stratify=ds.y)
    return ds, ds.to_matrix(), train, val, test


def test_metric_based_idgl(benchmark):
    ds, x, train, val, test = _setup()

    def run():
        model = IDGL(x, ds.num_classes, np.random.default_rng(0), k=15)
        trainer = Trainer(model, nn.Adam(model.parameters(), lr=0.01),
                          max_epochs=EPOCHS, patience=25)
        trainer.fit(lambda: model.loss(ds.y, mask=train),
                    lambda: accuracy(ds.y[val], model().data.argmax(1)[val]))
        return accuracy(ds.y[test], model().data.argmax(1)[test])

    acc = once(benchmark, run)
    ROWS.append(("IDGL", "metric", "—", "weighted cosine", "end-to-end", acc))
    assert acc > 0.6


def test_neural_slaps(benchmark):
    ds, x, train, val, test = _setup()

    def run():
        model = SLAPS(x, ds.num_classes, np.random.default_rng(0), k=15)
        trainer = Trainer(model, nn.Adam(model.parameters(), lr=0.01),
                          max_epochs=EPOCHS, patience=25)
        trainer.fit(lambda: model.loss(ds.y, mask=train),
                    lambda: accuracy(ds.y[val], model().data.argmax(1)[val]))
        return accuracy(ds.y[test], model().data.argmax(1)[test])

    acc = once(benchmark, run)
    ROWS.append(("SLAPS", "neural", "kNN", "MLP generator + DAE", "end-to-end", acc))
    assert acc > 0.6


def _direct_run(ds, x, train, val, test, init_from_knn):
    n = x.shape[0]
    if init_from_knn:
        prior = np.zeros((n, n))
        edges = knn_edges(x, k=15)
        prior[edges[1], edges[0]] = 1.0
        prior = np.maximum(prior, prior.T)
        learner = DirectGraphLearner(n, np.random.default_rng(0),
                                     init_adjacency=prior, init_scale=4.0)
    else:
        learner = DirectGraphLearner(n, np.random.default_rng(0))
    gnn = DenseGNN(x.shape[1], (32,), ds.num_classes, np.random.default_rng(1))
    features = Tensor(x)

    def loss_on(mask):
        return nn.cross_entropy(gnn(features, learner()), ds.y, mask=mask)

    train_bilevel(learner.parameters(), gnn.parameters(),
                  loss_fn=lambda: loss_on(train),
                  val_loss_fn=lambda: loss_on(val),
                  outer_steps=25, inner_steps=4)
    gnn.eval()
    pred = gnn(features, learner()).data.argmax(1)
    return accuracy(ds.y[test], pred[test])


def test_direct_lds_knn_init(benchmark):
    ds, x, train, val, test = _setup()
    acc = once(benchmark, lambda: _direct_run(ds, x, train, val, test, True))
    ROWS.append(("LDS-lite", "direct", "kNN", "free variables", "bi-level", acc))
    assert acc > 0.6


def test_direct_lds_random_init(benchmark):
    ds, x, train, val, test = _setup()
    acc = once(benchmark, lambda: _direct_run(ds, x, train, val, test, False))
    ROWS.append(("LDS-lite (rand init)", "direct", "random", "free variables",
                 "bi-level", acc))


def test_rule_based_control(benchmark):
    ds, x, train, val, test = _setup()

    def run():
        clf = KNNGraphClassifier(k=15, max_epochs=EPOCHS, seed=0)
        clf.fit(x, ds.y, train_mask=train, val_mask=val)
        return accuracy(ds.y[test], clf.predict(test))

    acc = once(benchmark, run)
    ROWS.append(("kNN+GCN (control)", "rule", "kNN", "—", "end-to-end", acc))


def test_zzz_render_table4(benchmark):
    def render():
        return record_table(
            "table4_learned",
            "Table 4 (reproduced): learning-based construction, measured",
            ["method", "strategy", "init", "modeling", "training", "test acc"],
            ROWS,
            note=("Expected shape: all three learned strategies recover the"
                  " latent structure (≈ rule-based control); random-init"
                  " direct learning trails kNN-init."),
        )

    once(benchmark, render)
    assert len(ROWS) >= 5
    by_name = {r[0]: r[-1] for r in ROWS}
    assert by_name["LDS-lite"] >= by_name["LDS-lite (rand init)"] - 0.05
