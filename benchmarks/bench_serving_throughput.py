"""Serving throughput: single-row vs micro-batched inductive inference.

Every single-row request pays the fixed cost of inductive scoring —
retrieval against the frozen pool, induced-graph construction, one GNN
forward.  The micro-batcher coalesces concurrent requests so that cost is
amortized across the batch.  This benchmark measures both paths on the
same engine and artifact, reporting rows/sec and p50/p95 per-request
latency; the acceptance bar is micro-batched throughput ≥ 5× single-row.
"""

import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from _harness import once, record_table

from repro.datasets import make_correlated_instances
from repro.pipeline import run_pipeline
from repro.serving import InferenceEngine, MicroBatcher

N_REQUESTS = 192
POOL_ROWS = 600
ROWS = []
STATE = {}


def _setup():
    if STATE:
        return
    dataset = make_correlated_instances(
        n=POOL_ROWS, seed=0, cluster_strength=2.0
    )
    result = run_pipeline(
        dataset, formulation="instance", network="gcn", max_epochs=40, seed=0
    )
    rng = np.random.default_rng(1)
    picks = rng.integers(0, POOL_ROWS, N_REQUESTS)
    STATE["artifact"] = result.export_artifact()
    # Perturbed pool rows: realistic unseen traffic, all distinct (no cache
    # assistance on either path — caching is disabled anyway).
    STATE["rows"] = dataset.numerical[picks] + rng.normal(
        0.0, 0.05, (N_REQUESTS, dataset.num_numerical)
    )


def _percentiles(latencies):
    latencies = np.sort(np.asarray(latencies)) * 1000.0
    return (
        float(np.percentile(latencies, 50)),
        float(np.percentile(latencies, 95)),
    )


def _run_single_row():
    _setup()
    engine = InferenceEngine(STATE["artifact"], cache_size=0)
    latencies = []
    start = time.perf_counter()
    for row in STATE["rows"]:
        t0 = time.perf_counter()
        engine.predict(row)
        latencies.append(time.perf_counter() - t0)
    elapsed = time.perf_counter() - start
    return N_REQUESTS / elapsed, latencies


def _run_micro_batched():
    _setup()
    engine = InferenceEngine(STATE["artifact"], cache_size=0)
    latencies = []

    def hit(row):
        t0 = time.perf_counter()
        batcher.submit(row)
        return time.perf_counter() - t0

    with MicroBatcher(engine, max_batch_size=64, max_delay_ms=5.0) as batcher:
        start = time.perf_counter()
        with ThreadPoolExecutor(32) as pool:
            latencies = list(pool.map(hit, STATE["rows"]))
        elapsed = time.perf_counter() - start
        stats = dict(batcher.stats)
    return N_REQUESTS / elapsed, latencies, stats


def test_single_row_throughput(benchmark):
    rps, latencies = once(benchmark, _run_single_row)
    p50, p95 = _percentiles(latencies)
    ROWS.append(("single-row", 1, rps, p50, p95))
    assert rps > 0


def test_micro_batched_throughput(benchmark):
    rps, latencies, stats = once(benchmark, _run_micro_batched)
    p50, p95 = _percentiles(latencies)
    ROWS.append(("micro-batched", stats["largest_batch"], rps, p50, p95))
    assert stats["batches"] < N_REQUESTS, "batcher never coalesced"


def test_zzz_render_throughput(benchmark):
    def render():
        single = next(r for r in ROWS if r[0] == "single-row")
        batched = next(r for r in ROWS if r[0] == "micro-batched")
        speedup = batched[2] / single[2]
        text = record_table(
            "serving_throughput",
            "Serving throughput: single-row vs micro-batched inference",
            ["mode", "max batch", "rows/sec", "p50 (ms)", "p95 (ms)"],
            [list(r) for r in ROWS],
            note=(
                f"pool={POOL_ROWS} rows, {N_REQUESTS} requests; "
                f"micro-batched speedup = {speedup:.1f}x (bar: >= 5x)"
            ),
        )
        assert speedup >= 5.0, f"micro-batching speedup {speedup:.1f}x below 5x bar"
        return text

    once(benchmark, render)
