"""Serving throughput: full-graph vs incremental vs compiled, micro-batching.

Five claims are measured on the instance formulation:

* **micro-batching** amortizes the full-graph path's fixed per-request cost
  (retrieval, induced-graph rebuild, pool re-forward) across coalesced
  requests — bar: >= 5x single-row throughput on the full-graph path;
* **incremental query propagation** (precomputed pool activations, only the
  B query rows recomputed per request) beats the full-graph path per
  single-row request — bar: >= 3x lower latency at pool >= 2000 rows, with
  predictions matching the full-graph oracle within 1e-8;
* incremental per-request latency is **near-flat in pool size**, measured
  by a pool-scaling sweep over all five network families (the edge-wise
  substrate makes the fast path network-agnostic) *and* over the
  hypergraph formulation (queries attach as new hyperedges over frozen
  value-node states; the full-graph oracle rebuilds the model on the
  attached incidence) — bar: sub-linear for every family (latency growth
  well below the pool growth factor);
* **compiled plans** (autograd stripped from the hot path, pool state
  pre-projected into plan constants — the engine default) beat the
  *interpreted* incremental path per single-row request — bar: >= 1.5x
  lower p50 at pool = 2000 for every instance network family, matching
  the full-graph oracle within 1e-8, with the one-time ``compile_ms``
  persisted per cell;
* **sub-linear retrieval** carries the attach stage to 10⁵–10⁶-row pools:
  a synthetic pool-scaling sweep times ``PoolIndex.top_k`` per single
  query under the exact scan vs the IVF backend and measures recall@k
  against the exact oracle — bar: >= 5x top_k speedup at pool = 10⁵ with
  recall@k >= 0.95, persisted as ``ann_pool_scaling`` rows (exact/IVF
  p50, recall, the one-time k-means ``build_ms``).

A further set of claims covers the observability layer itself: the span +
histogram instrumentation must cost < 5% of single-row incremental p50
(measured against an ``observability=False`` engine), and the
engine-internal request histogram must agree with an external caller-side
timer within 10% at p50 and p95 — the cross-check that makes ``/metrics``
latencies trustworthy on their own.

Alongside the human-readable table, results are persisted as
``benchmarks/results/BENCH_serving.json`` (rows/sec, p50/p95 latency, the
pool-scaling curve, and the observability overhead/agreement numbers) so
future PRs have a perf trajectory to compare against.
"""

import json
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from _harness import RESULTS_DIR, once, record_table

from repro.construction.retrieval import PoolIndex
from repro.construction.rules import knn_graph
from repro.datasets import TabularPreprocessor, make_correlated_instances, make_fraud
from repro.formulations import HypergraphFormulation
from repro.gnn.networks import build_network
from repro.pipeline import run_pipeline
from repro.serving import InferenceEngine, MicroBatcher, ModelArtifact

N_REQUESTS = 192
POOL_ROWS = 600
SWEEP_POOLS = (500, 1000, 2000, 4000)
SWEEP_NETWORKS = ("gcn", "sage", "gin", "gat", "gated")
SWEEP_REQUESTS = 24
#: ANN retrieval sweep: pool sizes far past what the serving sweep can
#: train on — the attach stage is timed in isolation on synthetic blobs.
ANN_POOLS = (10_000, 100_000, 1_000_000)
ANN_QUERIES = 24
ANN_K = 10
ROWS = []
SWEEP = []
ANN = []
OBS = {}
STATE = {}


def _setup():
    if STATE:
        return
    dataset = make_correlated_instances(
        n=POOL_ROWS, seed=0, cluster_strength=2.0
    )
    result = run_pipeline(
        dataset, formulation="instance", network="gcn", max_epochs=40, seed=0
    )
    rng = np.random.default_rng(1)
    picks = rng.integers(0, POOL_ROWS, N_REQUESTS)
    STATE["artifact"] = result.export_artifact()
    # Perturbed pool rows: realistic unseen traffic, all distinct (no cache
    # assistance on either path — caching is disabled anyway).
    STATE["rows"] = dataset.numerical[picks] + rng.normal(
        0.0, 0.05, (N_REQUESTS, dataset.num_numerical)
    )


#: dataset/preprocessor/kNN graph per sweep pool size — shared across the
#: five network families so extending SWEEP_NETWORKS stays cheap (graph
#: construction, not the model, dominates sweep setup).
_SWEEP_POOL_CACHE = {}


def _sweep_pool(pool_rows):
    if pool_rows not in _SWEEP_POOL_CACHE:
        dataset = make_correlated_instances(n=pool_rows, seed=2)
        prep = TabularPreprocessor(mode="onehot").fit(dataset)
        x = prep.transform_dataset(dataset)
        graph = knn_graph(x, k=10, metric="euclidean", y=dataset.y)
        _SWEEP_POOL_CACHE[pool_rows] = (dataset, prep, graph)
    return _SWEEP_POOL_CACHE[pool_rows]


def _sweep_artifact(pool_rows, network="gcn"):
    """Untrained (random-weight) artifact over a ``pool_rows``-row pool.

    Latency does not depend on the weight values, so skipping training keeps
    the sweep cheap while exercising the exact serving code paths.
    """
    dataset, prep, graph = _sweep_pool(pool_rows)
    model = build_network(
        network, graph, 32, dataset.num_classes, np.random.default_rng(0),
        num_layers=2,
    )
    artifact = ModelArtifact(
        formulation="instance",
        network=network,
        config={
            "hidden_dim": 32,
            "out_dim": dataset.num_classes,
            "k": 10,
            "metric": "euclidean",
            "num_layers": 2,
            "embed_dim": 16,
            "task": dataset.task,
        },
        state_dict=model.state_dict(),
        preprocessor=prep,
        pool_x=np.asarray(graph.x, dtype=np.float64),
        pool_edge_index=graph.edge_index.astype(np.int64),
    )
    rng = np.random.default_rng(3)
    requests = dataset.numerical[
        rng.integers(0, pool_rows, SWEEP_REQUESTS)
    ] + rng.normal(0.0, 0.05, (SWEEP_REQUESTS, dataset.num_numerical))
    return artifact, requests


def _hypergraph_sweep_artifact(pool_rows):
    """Untrained hypergraph artifact over a ``pool_rows``-row training table.

    The "pool" here is the frozen incidence structure (one column per
    training row); incremental serving touches only the cached value-node
    states, so its latency should be flat while the full-graph oracle —
    which rebuilds the model on the attached incidence — grows with it.
    """
    dataset = make_fraud(n=pool_rows, seed=2)
    config = {
        "network": "hypergraph_gnn",
        "hidden_dim": 32,
        "out_dim": dataset.num_classes,
        "num_layers": 2,
        "task": dataset.task,
    }
    fitted = HypergraphFormulation().fit(dataset, None, config)
    model = fitted.build_model(np.random.default_rng(0))
    arrays, meta = fitted.artifact_payload()
    artifact = ModelArtifact(
        formulation="hypergraph",
        network=fitted.model_builder,
        config=config,
        state_dict=model.state_dict(),
        preprocessor=fitted.preprocessor,
        payload_arrays=arrays,
        payload_meta=meta,
    )
    rng = np.random.default_rng(3)
    picks = rng.integers(0, pool_rows, SWEEP_REQUESTS)
    numerical = dataset.numerical[picks] + rng.normal(
        0.0, 0.05, (SWEEP_REQUESTS, dataset.num_numerical)
    )
    return artifact, numerical, dataset.categorical[picks]


def _percentiles(latencies):
    latencies = np.sort(np.asarray(latencies)) * 1000.0
    return (
        float(np.percentile(latencies, 50)),
        float(np.percentile(latencies, 95)),
    )


def _time_single_rows(engine, rows, cats=None):
    latencies = []
    start = time.perf_counter()
    for i, row in enumerate(rows):
        t0 = time.perf_counter()
        engine.predict(row, None if cats is None else cats[i])
        latencies.append(time.perf_counter() - t0)
    elapsed = time.perf_counter() - start
    return len(rows) / elapsed, latencies


def _run_single_row(incremental, compiled=False):
    # ``compiled=False`` by default keeps the full-graph / incremental
    # rows measuring the interpreted paths they always measured; the
    # compiled row opts in explicitly.
    _setup()
    engine = InferenceEngine(
        STATE["artifact"], cache_size=0, incremental=incremental,
        compiled=compiled,
    )
    return _time_single_rows(engine, STATE["rows"])


def _run_micro_batched():
    _setup()
    # Full-graph engine: micro-batching is what amortizes that path's fixed
    # per-request cost (the incremental path has little left to amortize).
    engine = InferenceEngine(STATE["artifact"], cache_size=0, incremental=False)

    def hit(row):
        t0 = time.perf_counter()
        batcher.submit(row)
        return time.perf_counter() - t0

    with MicroBatcher(engine, max_batch_size=64, max_delay_ms=5.0) as batcher:
        start = time.perf_counter()
        with ThreadPoolExecutor(32) as pool:
            latencies = list(pool.map(hit, STATE["rows"]))
        elapsed = time.perf_counter() - start
        stats = dict(batcher.stats)
    return N_REQUESTS / elapsed, latencies, stats


def test_single_row_full_graph(benchmark):
    rps, latencies = once(benchmark, lambda: _run_single_row(False))
    p50, p95 = _percentiles(latencies)
    ROWS.append(("single-row full-graph", 1, rps, p50, p95))
    assert rps > 0


def test_single_row_incremental(benchmark):
    rps, latencies = once(benchmark, lambda: _run_single_row(True))
    p50, p95 = _percentiles(latencies)
    ROWS.append(("single-row incremental", 1, rps, p50, p95))
    assert rps > 0


def test_single_row_compiled(benchmark):
    rps, latencies = once(
        benchmark, lambda: _run_single_row(True, compiled=True)
    )
    p50, p95 = _percentiles(latencies)
    ROWS.append(("single-row compiled", 1, rps, p50, p95))
    assert rps > 0


def test_micro_batched_throughput(benchmark):
    rps, latencies, stats = once(benchmark, _run_micro_batched)
    p50, p95 = _percentiles(latencies)
    ROWS.append(("micro-batched full-graph", stats["largest_batch"], rps, p50, p95))
    assert stats["batches"] < N_REQUESTS, "batcher never coalesced"


def test_pool_scaling_sweep(benchmark):
    def sweep():
        for network in SWEEP_NETWORKS:
            for pool_rows in SWEEP_POOLS:
                artifact, requests = _sweep_artifact(pool_rows, network)
                full = InferenceEngine(artifact, cache_size=0, incremental=False)
                inc = InferenceEngine(
                    artifact, cache_size=0, incremental=True, compiled=False
                )
                comp = InferenceEngine(artifact, cache_size=0)  # the default
                assert comp.compiled, f"{network}: plan failed to compile"
                # Correctness first: both fast paths must match the oracle.
                oracle = full.predict_batch(requests)
                diff = float(np.abs(inc.predict_batch(requests) - oracle).max())
                assert diff < 1e-8, (
                    f"{network} pool={pool_rows}: parity broken ({diff:.2e})"
                )
                comp_diff = float(
                    np.abs(comp.predict_batch(requests) - oracle).max()
                )
                assert comp_diff < 1e-8, (
                    f"{network} pool={pool_rows}: compiled parity broken "
                    f"({comp_diff:.2e})"
                )
                _, full_lat = _time_single_rows(full, requests)
                _, inc_lat = _time_single_rows(inc, requests)
                _, comp_lat = _time_single_rows(comp, requests)
                full_p50, _ = _percentiles(full_lat)
                inc_p50, _ = _percentiles(inc_lat)
                comp_p50, _ = _percentiles(comp_lat)
                SWEEP.append(
                    {
                        "network": network,
                        "pool_rows": pool_rows,
                        "full_p50_ms": full_p50,
                        "incremental_p50_ms": inc_p50,
                        "compiled_p50_ms": comp_p50,
                        "speedup": full_p50 / inc_p50,
                        "compiled_speedup": inc_p50 / comp_p50,
                        "compile_ms": float(comp.compile_ms),
                        "max_abs_diff": diff,
                        "compiled_max_abs_diff": comp_diff,
                    }
                )
        # Hypergraph: same sweep, formulation-level — queries attach as new
        # hyperedges over frozen value-node states, oracle rebuilds on the
        # attached incidence.
        for pool_rows in SWEEP_POOLS:
            artifact, numerical, categorical = _hypergraph_sweep_artifact(pool_rows)
            full = InferenceEngine(artifact, cache_size=0, incremental=False)
            inc = InferenceEngine(
                artifact, cache_size=0, incremental=True, compiled=False
            )
            comp = InferenceEngine(artifact, cache_size=0)
            assert comp.compiled, "hypergraph plan failed to compile"
            oracle = full.predict_batch(numerical, categorical)
            diff = float(
                np.abs(inc.predict_batch(numerical, categorical) - oracle).max()
            )
            assert diff < 1e-8, (
                f"hypergraph pool={pool_rows}: parity broken ({diff:.2e})"
            )
            comp_diff = float(
                np.abs(comp.predict_batch(numerical, categorical) - oracle).max()
            )
            assert comp_diff < 1e-8, (
                f"hypergraph pool={pool_rows}: compiled parity broken "
                f"({comp_diff:.2e})"
            )
            _, full_lat = _time_single_rows(full, numerical, categorical)
            _, inc_lat = _time_single_rows(inc, numerical, categorical)
            _, comp_lat = _time_single_rows(comp, numerical, categorical)
            full_p50, _ = _percentiles(full_lat)
            inc_p50, _ = _percentiles(inc_lat)
            comp_p50, _ = _percentiles(comp_lat)
            # The hypergraph hot path was already one cached segment-sum;
            # compiled columns are recorded but the 1.5x bar applies to
            # the instance families, where autograd dominated.
            SWEEP.append(
                {
                    "network": "hypergraph",
                    "pool_rows": pool_rows,
                    "full_p50_ms": full_p50,
                    "incremental_p50_ms": inc_p50,
                    "compiled_p50_ms": comp_p50,
                    "speedup": full_p50 / inc_p50,
                    "compiled_speedup": inc_p50 / comp_p50,
                    "compile_ms": float(comp.compile_ms),
                    "max_abs_diff": diff,
                    "compiled_max_abs_diff": comp_diff,
                }
            )
        return SWEEP

    once(benchmark, sweep)
    for point in SWEEP:
        if point["pool_rows"] >= 2000:
            assert point["speedup"] >= 3.0, (
                f"{point['network']} pool={point['pool_rows']}: incremental only "
                f"{point['speedup']:.1f}x faster (bar: >= 3x)"
            )
        # Compiled bar: stripping autograd must buy >= 1.5x over the
        # interpreted incremental path at the 2000-row reference pool for
        # every instance network family.
        if point["pool_rows"] == 2000 and point["network"] in SWEEP_NETWORKS:
            assert point["compiled_speedup"] >= 1.5, (
                f"{point['network']} pool=2000: compiled only "
                f"{point['compiled_speedup']:.2f}x faster than interpreted "
                f"incremental (bar: >= 1.5x)"
            )
    pool_growth = SWEEP_POOLS[-1] / SWEEP_POOLS[0]
    for network in dict.fromkeys(p["network"] for p in SWEEP):
        curve = [p for p in SWEEP if p["network"] == network]
        latency_growth = (
            curve[-1]["incremental_p50_ms"] / curve[0]["incremental_p50_ms"]
        )
        assert latency_growth < pool_growth / 2.0, (
            f"{network}: incremental latency grew {latency_growth:.1f}x over a "
            f"{pool_growth:.0f}x pool increase — not sub-linear"
        )


def _time_top_k(index, queries, k):
    """Per-single-query ``top_k`` latencies (the serving attach pattern)."""
    latencies = []
    for i in range(queries.shape[0]):
        query = queries[i : i + 1]
        t0 = time.perf_counter()
        index.top_k(query, k)
        latencies.append(time.perf_counter() - t0)
    return latencies


def test_ann_pool_scaling(benchmark):
    """Exact scan vs IVF index at pools the dense sweep cannot reach.

    Synthetic clustered blobs (the regime a frozen training pool of user
    rows actually lives in — traffic concentrates around modes) at
    10⁴–10⁶ rows; per-query ``top_k`` latency and recall@k against the
    exact oracle are recorded per pool size.  Bar (the tentpole claim):
    the IVF backend is >= 5x faster than the exact scan at pool = 10⁵
    while recall@k >= 0.95.
    """

    def sweep():
        rng = np.random.default_rng(7)
        dim, n_centers = 24, 64
        centers = rng.normal(0.0, 4.0, (n_centers, dim))
        for pool_rows in ANN_POOLS:
            pool = centers[
                rng.integers(0, n_centers, pool_rows)
            ] + rng.normal(0.0, 1.0, (pool_rows, dim))
            queries = centers[
                rng.integers(0, n_centers, ANN_QUERIES)
            ] + rng.normal(0.0, 1.0, (ANN_QUERIES, dim))
            exact = PoolIndex(pool, measure="euclidean")
            t0 = time.perf_counter()
            ivf = PoolIndex(pool, measure="euclidean", backend="ivf")
            build_ms = (time.perf_counter() - t0) * 1000.0
            truth = exact.top_k(queries, ANN_K)
            approx = ivf.top_k(queries, ANN_K)
            recall = sum(
                len(set(truth[i]) & set(approx[i]))
                for i in range(ANN_QUERIES)
            ) / float(ANN_QUERIES * ANN_K)
            exact_p50, exact_p95 = _percentiles(_time_top_k(exact, queries, ANN_K))
            ivf_p50, ivf_p95 = _percentiles(_time_top_k(ivf, queries, ANN_K))
            ANN.append(
                {
                    "pool_rows": pool_rows,
                    "nlist": int(ivf._backend.nlist),
                    "nprobe": int(ivf._backend.nprobe),
                    "exact_p50_ms": exact_p50,
                    "exact_p95_ms": exact_p95,
                    "ivf_p50_ms": ivf_p50,
                    "ivf_p95_ms": ivf_p95,
                    "speedup": exact_p50 / ivf_p50,
                    "recall_at_k": float(recall),
                    "build_ms": build_ms,
                }
            )
        return ANN

    once(benchmark, sweep)
    bar = next(c for c in ANN if c["pool_rows"] == 100_000)
    assert bar["speedup"] >= 5.0, (
        f"IVF only {bar['speedup']:.1f}x faster than the exact scan at "
        f"pool=1e5 (bar: >= 5x)"
    )
    assert bar["recall_at_k"] >= 0.95, (
        f"IVF recall@{ANN_K} {bar['recall_at_k']:.3f} at pool=1e5 "
        f"(bar: >= 0.95)"
    )


def test_observability_overhead_and_agreement(benchmark):
    """Two claims about the instrumentation itself.

    * **Overhead**: the full span + histogram stack (request span, cache /
      score / encode / attach / plan_execute / head stages, request-latency
      observe) costs < 5% of single-row compiled p50 versus an
      ``observability=False`` engine (plus a small absolute slack for
      timer noise on sub-millisecond latencies).
    * **Agreement**: the engine-internal request histogram — fed by its
      own ``perf_counter`` bracket and answering quantiles from the raw
      reservoir — matches an external caller-side timer within 10% at p50
      and p95, so ``/metrics`` latencies can be trusted without a bench
      harness attached.
    """

    def run():
        _setup()

        # A/B interleaved: alternating runs see the same thermal / noisy-
        # neighbor drift, so the best-of-5 floors are comparable; measuring
        # one engine's five runs back-to-back lets a slow minute land
        # entirely on one side and fake (or hide) overhead.
        engines = {
            observability: InferenceEngine(
                STATE["artifact"], cache_size=0, incremental=True,
                observability=observability,
            )
            for observability in (False, True)
        }
        runs = {False: [], True: []}
        for engine in engines.values():
            _time_single_rows(engine, STATE["rows"][:32])  # warm-up
        for _ in range(5):
            for observability, engine in engines.items():
                rps, lat = _time_single_rows(engine, STATE["rows"])
                p50, p95 = _percentiles(lat)
                runs[observability].append((p50, p95, rps))
        # best-of-5 by p50: least scheduler noise
        plain_p50, plain_p95, plain_rps = min(runs[False])
        instrumented_p50, instrumented_p95, instrumented_rps = min(runs[True])

        # Agreement run on a *fresh* instrumented engine: its reservoir
        # then holds exactly the requests the external timer saw.
        engine = InferenceEngine(STATE["artifact"], cache_size=0, incremental=True)
        _, latencies = _time_single_rows(engine, STATE["rows"])
        external_p50, external_p95 = _percentiles(latencies)
        hist = engine.registry.get("repro_request_duration_seconds").labels(
            formulation="instance", endpoint="predict"
        )
        internal_p50 = hist.quantile(0.5) * 1000.0
        internal_p95 = hist.quantile(0.95) * 1000.0

        return {
            "plain_p50_ms": plain_p50,
            "plain_p95_ms": plain_p95,
            "plain_rows_per_sec": plain_rps,
            "instrumented_p50_ms": instrumented_p50,
            "instrumented_p95_ms": instrumented_p95,
            "instrumented_rows_per_sec": instrumented_rps,
            "overhead_pct": 100.0 * (instrumented_p50 / plain_p50 - 1.0),
            "external_p50_ms": external_p50,
            "internal_p50_ms": internal_p50,
            "external_p95_ms": external_p95,
            "internal_p95_ms": internal_p95,
        }

    OBS.update(once(benchmark, run))
    ROWS.append((
        "single-row incr (no obs)", 1, OBS["plain_rows_per_sec"],
        OBS["plain_p50_ms"], OBS["plain_p95_ms"],
    ))
    ROWS.append((
        "single-row incr (instrumented)", 1, OBS["instrumented_rows_per_sec"],
        OBS["instrumented_p50_ms"], OBS["instrumented_p95_ms"],
    ))
    assert OBS["instrumented_p50_ms"] <= OBS["plain_p50_ms"] * 1.05 + 0.02, (
        f"instrumentation overhead {OBS['overhead_pct']:.1f}% "
        f"({OBS['plain_p50_ms']:.3f}ms -> {OBS['instrumented_p50_ms']:.3f}ms) "
        f"blows the 5% budget"
    )
    for q in ("p50", "p95"):
        internal, external = OBS[f"internal_{q}_ms"], OBS[f"external_{q}_ms"]
        assert abs(internal - external) / external < 0.10, (
            f"engine-internal {q} {internal:.3f}ms disagrees with external "
            f"timer {external:.3f}ms by more than 10%"
        )


def test_zzz_render_throughput(benchmark):
    def render():
        single_full = next(r for r in ROWS if r[0] == "single-row full-graph")
        single_inc = next(r for r in ROWS if r[0] == "single-row incremental")
        single_comp = next(r for r in ROWS if r[0] == "single-row compiled")
        batched = next(r for r in ROWS if r[0] == "micro-batched full-graph")
        batch_speedup = batched[2] / single_full[2]
        inc_speedup = single_full[3] / single_inc[3]
        compiled_speedup = single_inc[3] / single_comp[3]
        table_rows = [list(r) for r in ROWS] + [
            [
                f"sweep {p['network']} pool={p['pool_rows']} full",
                1, "-", p["full_p50_ms"], "-",
            ]
            for p in SWEEP
        ] + [
            [
                f"sweep {p['network']} pool={p['pool_rows']} incr",
                1, "-", p["incremental_p50_ms"], "-",
            ]
            for p in SWEEP
        ] + [
            [
                f"sweep {p['network']} pool={p['pool_rows']} compiled",
                1, "-", p["compiled_p50_ms"], "-",
            ]
            for p in SWEEP
        ] + [
            [
                f"ann pool={c['pool_rows']} {mode} top_k",
                1, "-", c[f"{mode}_p50_ms"], c[f"{mode}_p95_ms"],
            ]
            for c in ANN
            for mode in ("exact", "ivf")
        ]
        text = record_table(
            "serving_throughput",
            "Serving throughput: full-graph vs incremental vs compiled",
            ["mode", "max batch", "rows/sec", "p50 (ms)", "p95 (ms)"],
            table_rows,
            note=(
                f"pool={POOL_ROWS} rows, {N_REQUESTS} requests; "
                f"micro-batched speedup = {batch_speedup:.1f}x (bar: >= 5x); "
                f"incremental p50 speedup = {inc_speedup:.1f}x; compiled p50 "
                f"speedup over interpreted incremental = "
                f"{compiled_speedup:.1f}x (bar: >= 1.5x at pool=2000 per "
                f"network); sweep pools {SWEEP_POOLS} x networks "
                f"{SWEEP_NETWORKS} + the hypergraph formulation with >= 3x "
                f"bar from 2000 rows; ANN retrieval sweep pools {ANN_POOLS} "
                f"with >= 5x IVF top_k speedup at recall@{ANN_K} >= 0.95 "
                f"bar at pool=1e5"
            ),
        )
        payload = {
            "pool_rows": POOL_ROWS,
            "n_requests": N_REQUESTS,
            "modes": [
                {
                    "mode": mode,
                    "max_batch": int(max_batch),
                    "rows_per_sec": float(rps),
                    "p50_ms": float(p50),
                    "p95_ms": float(p95),
                }
                for mode, max_batch, rps, p50, p95 in ROWS
            ],
            "microbatch_speedup": float(batch_speedup),
            "incremental_p50_speedup": float(inc_speedup),
            "compiled_p50_speedup": float(compiled_speedup),
            "pool_scaling": SWEEP,
            "ann_pool_scaling": ANN,
            "observability": {k: float(v) for k, v in OBS.items()},
        }
        RESULTS_DIR.mkdir(exist_ok=True)
        out = RESULTS_DIR / "BENCH_serving.json"
        # Merge over the existing file: other benches (bench_loadgen) own
        # keys in the same JSON, and those rows must survive a rerun here.
        merged = {}
        if out.exists():
            try:
                merged = json.loads(out.read_text())
            except (ValueError, OSError):
                merged = {}
        merged.update(payload)
        out.write_text(json.dumps(merged, indent=2) + "\n")
        assert batch_speedup >= 5.0, (
            f"micro-batching speedup {batch_speedup:.1f}x below 5x bar"
        )
        return text

    once(benchmark, render)
