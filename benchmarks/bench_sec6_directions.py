"""Sec. 6 — open problems & future directions, made measurable.

The survey's Sec. 6 names concrete technical directions.  Four of them are
implementable and testable today; this benchmark measures each:

1. *Tree-based abilities* — GBDT vs GNN on non-smooth boundaries and with
   irrelevant features (the Grinsztajn et al. findings the survey cites);
2. *Scaling* — neighbor-sampled mini-batch training vs full-batch;
3. *Graph-based SSL* — the survey's proposed structural SSL tasks at low
   label budget;
4. *Robustness* — accuracy under structural edge noise, comparing fixed
   rule-based graphs against learned structure (which can route around the
   noise).
"""

import time

import numpy as np
from _harness import once, record_table

from repro import nn, robustness
from repro.baselines import GradientBoostingClassifier, MLPClassifier
from repro.construction.rules import knn_graph
from repro.datasets import make_correlated_instances, train_val_test_masks
from repro.gnn.networks import GCN
from repro.gnn.sampling import SampledSAGE, train_sampled
from repro.metrics import accuracy
from repro.models import SLAPS, KNNGraphClassifier
from repro.tensor import Tensor
from repro.training.ssl import GraphCompletionTask, NeighborhoodPredictionTask
from repro.training.trainer import Trainer

EPOCHS = 100
ROWS = []


def _non_smooth_dataset(n=1500, irrelevant=0, seed=0, cell=0.67):
    """Checkerboard labels: non-smooth decision boundary + optional noise cols.

    ``cell`` controls boundary sharpness — smaller cells mean more label
    discontinuities per unit area, the regime where trees excel."""
    rng = np.random.default_rng(seed)
    x_core = rng.uniform(-2, 2, size=(n, 2))
    y = ((np.floor(x_core[:, 0] / cell) + np.floor(x_core[:, 1] / cell)) % 2
         ).astype(np.int64)
    noise = rng.normal(size=(n, irrelevant))
    return np.concatenate([x_core, noise], axis=1), y


def test_direction_tree_abilities(benchmark):
    """GBDT handles non-smooth boundaries and irrelevant features; GNN/MLP suffer."""

    def run():
        out = {}
        for irrelevant in (0, 16):
            x, y = _non_smooth_dataset(irrelevant=irrelevant)
            rng = np.random.default_rng(0)
            train, val, test = train_val_test_masks(len(y), 0.6, 0.2, rng, stratify=y)
            gbdt = GradientBoostingClassifier(num_rounds=100, max_depth=6, lr=0.3, seed=0)
            gbdt.fit(x[train], y[train])
            gbdt_acc = accuracy(y[test], gbdt.predict(x[test]))
            mlp = MLPClassifier(hidden_dims=(64, 32), epochs=2 * EPOCHS, seed=0)
            mlp.fit(x[train], y[train])
            mlp_acc = accuracy(y[test], mlp.predict(x[test]))
            gnn = KNNGraphClassifier(k=8, max_epochs=2 * EPOCHS, seed=0)
            gnn.fit(x, y, train_mask=train, val_mask=val)
            gnn_acc = accuracy(y[test], gnn.predict(test))
            out[irrelevant] = (gbdt_acc, mlp_acc, gnn_acc)
        return out

    results = once(benchmark, run)
    for irrelevant, (gbdt_acc, mlp_acc, gnn_acc) in results.items():
        label = "checkerboard" if irrelevant == 0 else f"checkerboard + {irrelevant} noise cols"
        ROWS.append(("tree abilities", label,
                     f"GBDT {gbdt_acc:.3f} | MLP {mlp_acc:.3f} | kNN-GCN {gnn_acc:.3f}"))
    # The survey's cited findings: (1) trees dominate non-smooth targets —
    # and the kNN-graph GNN is *worst* there because message passing smooths
    # across the checkerboard boundaries; (2) with irrelevant columns, the
    # tree degrades less than the MLP.
    gbdt_clean, mlp_clean, gnn_clean = results[0]
    gbdt_noisy, mlp_noisy, _ = results[16]
    assert gbdt_clean > mlp_clean > gnn_clean
    assert gbdt_noisy >= mlp_noisy


def test_direction_scaling_neighbor_sampling(benchmark):
    """Mini-batch sampled training approaches full-batch accuracy."""
    ds = make_correlated_instances(n=800, cluster_strength=1.5, seed=0)
    x = ds.to_matrix()
    graph = knn_graph(x, k=8, y=ds.y)
    rng = np.random.default_rng(0)
    train, val, test = train_val_test_masks(800, 0.5, 0.2, rng, stratify=ds.y)

    def run():
        start = time.perf_counter()
        full = GCN(graph, (32,), ds.num_classes, np.random.default_rng(0))
        opt = nn.Adam(full.parameters(), lr=0.01)
        for _ in range(30):
            loss = nn.cross_entropy(full(), ds.y, mask=train)
            opt.zero_grad()
            loss.backward()
            opt.step()
        full.eval()
        full_time = time.perf_counter() - start
        full_acc = accuracy(ds.y[test], full().data.argmax(1)[test])

        start = time.perf_counter()
        sampled = SampledSAGE(x.shape[1], 32, ds.num_classes, np.random.default_rng(0))
        train_sampled(graph, ds.y, train, sampled, fanouts=(5, 5),
                      batch_size=128, epochs=6)
        sampled_time = time.perf_counter() - start
        logits = sampled.forward_full(Tensor(x), graph.mean_adjacency()).data
        sampled_acc = accuracy(ds.y[test], logits.argmax(1)[test])
        return full_acc, full_time, sampled_acc, sampled_time

    full_acc, full_time, sampled_acc, sampled_time = once(benchmark, run)
    ROWS.append(("scaling", "full-batch GCN (30 epochs)",
                 f"acc {full_acc:.3f} in {full_time:.1f}s"))
    ROWS.append(("scaling", "sampled SAGE (6 epochs, fanout 5x5)",
                 f"acc {sampled_acc:.3f} in {sampled_time:.1f}s"))
    assert sampled_acc > full_acc - 0.1  # matches within tolerance


def test_direction_graph_ssl(benchmark):
    """The survey's proposed structural SSL tasks at a 6% label budget."""
    ds = make_correlated_instances(n=300, cluster_strength=1.2, flip_y=0.05, seed=3)
    x = ds.to_matrix()
    graph = knn_graph(x, k=8, y=ds.y)
    rng = np.random.default_rng(0)
    train, val, test = train_val_test_masks(300, 0.06, 0.14, rng, stratify=ds.y)

    def train_with(task_name):
        model = GCN(graph, (32,), ds.num_classes, np.random.default_rng(0))
        task = None
        if task_name == "graph completion":
            task = GraphCompletionTask(32, graph.edge_index, np.random.default_rng(1))
        elif task_name == "neighborhood prediction":
            task = NeighborhoodPredictionTask(32, graph.edge_index,
                                              np.random.default_rng(1))
        params = model.parameters() + (task.parameters() if task else [])
        opt = nn.Adam(params, lr=0.01, weight_decay=5e-4)
        trainer = Trainer(model, opt, max_epochs=EPOCHS, patience=30)

        def loss_fn():
            from repro.tensor import ops

            loss = nn.cross_entropy(model(), ds.y, mask=train)
            if task is not None:
                loss = ops.add(loss, ops.mul(Tensor(0.3), task.loss(model.embed())))
            return loss

        trainer.fit(loss_fn,
                    lambda: accuracy(ds.y[val], model().data.argmax(1)[val]))
        return accuracy(ds.y[test], model().data.argmax(1)[test])

    def run():
        return {name: train_with(name)
                for name in ("none", "graph completion", "neighborhood prediction")}

    results = once(benchmark, run)
    for name, acc in results.items():
        ROWS.append(("graph SSL (6% labels)", name, f"acc {acc:.3f}"))
    best_ssl = max(results["graph completion"], results["neighborhood prediction"])
    assert best_ssl >= results["none"] - 0.03


def test_direction_robustness_structure_noise(benchmark):
    """Learned structure (SLAPS) routes around edge noise that a fixed rule
    graph propagates."""
    ds = make_correlated_instances(n=250, cluster_strength=1.5, seed=4)
    x = ds.to_matrix()
    rng = np.random.default_rng(0)
    train, val, test = train_val_test_masks(250, 0.3, 0.2, rng, stratify=ds.y)

    def run():
        out = {}
        for noise in (0.0, 0.5):
            graph = knn_graph(x, k=8, y=ds.y)
            noisy = robustness.perturb_edges(graph, noise, np.random.default_rng(1))
            noisy.x = x
            fixed = GCN(noisy, (32,), ds.num_classes, np.random.default_rng(0))
            opt = nn.Adam(fixed.parameters(), lr=0.01, weight_decay=5e-4)
            trainer = Trainer(fixed, opt, max_epochs=EPOCHS, patience=25)
            trainer.fit(
                lambda: nn.cross_entropy(fixed(), ds.y, mask=train),
                lambda: accuracy(ds.y[val], fixed().data.argmax(1)[val]),
            )
            fixed_acc = accuracy(ds.y[test], fixed().data.argmax(1)[test])

            learned = SLAPS(x, ds.num_classes, np.random.default_rng(0), k=8)
            opt = nn.Adam(learned.parameters(), lr=0.01)
            trainer = Trainer(learned, opt, max_epochs=EPOCHS, patience=25)
            trainer.fit(
                lambda: learned.loss(ds.y, mask=train),
                lambda: accuracy(ds.y[val], learned().data.argmax(1)[val]),
            )
            learned_acc = accuracy(ds.y[test], learned().data.argmax(1)[test])
            out[noise] = (fixed_acc, learned_acc)
        return out

    results = once(benchmark, run)
    for noise, (fixed_acc, learned_acc) in results.items():
        ROWS.append(("robustness", f"{noise:.0%} edge noise",
                     f"fixed kNN-GCN {fixed_acc:.3f} | learned SLAPS {learned_acc:.3f}"))
    # The fixed graph degrades with noise; the learned graph (which ignores
    # the corrupted edges entirely) does not.
    assert results[0.5][0] < results[0.0][0] + 0.02
    assert results[0.5][1] >= results[0.5][0] - 0.02


def test_zzz_render_sec6(benchmark):
    def render():
        return record_table(
            "sec6_directions",
            "Sec. 6 (reproduced): future directions, measured today",
            ["direction", "condition", "measured"],
            ROWS,
            note=("1) trees dominate non-smooth targets (and message passing"
                  " actively hurts there), degrading less than MLPs under"
                  " irrelevant columns; 2) sampled mini-batches match"
                  " full-batch accuracy; 3) structural SSL is safe (not"
                  " dominant) at low labels; 4) learned structure resists"
                  " edge noise that degrades fixed rule graphs."),
        )

    once(benchmark, render)
    assert len(ROWS) >= 9
