"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the survey's tables or figures as a
*measured* artifact.  Regenerated tables are printed and also written to
``benchmarks/results/<name>.txt`` so the output survives pytest's capture
(see EXPERIMENTS.md for the paper-vs-measured index).
"""

from __future__ import annotations

import pathlib
from typing import Iterable, Sequence

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def record_table(
    name: str,
    title: str,
    header: Sequence[str],
    rows: Iterable[Sequence[object]],
    note: str = "",
) -> str:
    """Format, print and persist a regenerated table."""
    rows = [list(map(_fmt, row)) for row in rows]
    widths = [
        max(len(str(header[i])), *(len(r[i]) for r in rows)) if rows else len(str(header[i]))
        for i in range(len(header))
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if note:
        lines += ["", note]
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)
    return text


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
