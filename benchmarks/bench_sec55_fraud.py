"""Sec. 5.1/5.5 — fraud detection on multi-relational graphs, reproduced.

TabGNN's multiplex relations vs the flat MLP and the flattened single
graph, under a camouflage sweep: as fraudsters increasingly hide behind
benign devices, the relational advantage should erode — the survey's
homophily caveat made measurable.
"""

from _harness import once, record_table

from repro.applications import run_fraud_benchmark
from repro.datasets import make_fraud

ROWS = []
EPOCHS = 120
METHODS = ("mlp", "tabgnn_attention", "tabgnn_mean", "flattened_gcn")


def _run(camouflage, benchmark):
    ds = make_fraud(n=500, camouflage=camouflage, seed=0)
    results = once(benchmark, lambda: run_fraud_benchmark(ds, epochs=EPOCHS, seed=0))
    for method in METHODS:
        stats = results[method]
        ROWS.append((f"{camouflage:.0%}", method, stats["auc"], stats["ap"],
                     stats["f1"]))
    return results


def test_low_camouflage(benchmark):
    results = _run(0.1, benchmark)
    assert results["tabgnn_attention"]["auc"] > results["mlp"]["auc"]


def test_medium_camouflage(benchmark):
    _run(0.3, benchmark)


def test_high_camouflage(benchmark):
    results = _run(0.7, benchmark)
    # With relations mostly camouflaged, relation-based models lose their
    # edge entirely (the survey's homophily caveat: only attributes with
    # strong homophilic effects should become relations).
    low_camo_auc = next(
        r[2] for r in ROWS if r[0] == "10%" and r[1] == "tabgnn_attention"
    )
    assert results["tabgnn_attention"]["auc"] < low_camo_auc - 0.1


def test_camouflage_erodes_relational_advantage(benchmark):
    def compute():
        gaps = {}
        for row_camo in ("10%", "70%"):
            tab = next(r[2] for r in ROWS if r[0] == row_camo
                       and r[1] == "tabgnn_attention")
            mlp = next(r[2] for r in ROWS if r[0] == row_camo and r[1] == "mlp")
            gaps[row_camo] = tab - mlp
        return gaps

    gaps = once(benchmark, compute)
    assert gaps["10%"] > gaps["70%"] - 0.02, "camouflage should erode the gap"


def test_zzz_render_sec55(benchmark):
    def render():
        return record_table(
            "sec55_fraud",
            "Sec. 5.1/5.5 (reproduced): fraud detection, camouflage sweep",
            ["camouflage", "method", "ROC-AUC", "AP", "F1"],
            ROWS,
            note=("Expected shape: TabGNN's relational advantage over the"
                  " flat MLP is large at low camouflage and erodes as"
                  " fraudsters hide behind benign devices."),
        )

    once(benchmark, render)
    assert len(ROWS) == 12
